// Package noalloc defines the static allocation fence: a function
// annotated //npf:noalloc — and everything it transitively calls, across
// packages — must contain no allocating construct. This is the static
// counterpart of the runtime testing.AllocsPerRun gates: the runtime gates
// prove the benched path allocation-free, the fence proves it on all
// paths, and the Required registry ties the two together by demanding the
// annotation stays on the gated hot paths (so deleting the annotation
// fails CI rather than silently narrowing the contract).
//
// Flagged constructs: make/new, append (it may grow the backing array),
// heap composite literals (&T{}, map/slice literals), variable-capturing
// closures, interface boxing (calls, assignments, returns, conversions),
// string concatenation and string<->slice conversions, map assignment,
// go statements, any call into fmt, and calls whose allocation behavior
// cannot be proven (dynamic calls, unanalyzed packages).
//
// Escapes: a line annotated //npf:allocok is exempt (reviewed boundary —
// e.g. a pool refill or an append that reuses the slice's own backing),
// and a function annotated //npf:allocok is a trusted boundary the fence
// does not enter. Escaped constructs are also dropped from the function's
// exported Allocates fact, so a reviewed hot-path helper stays callable
// from fences in other packages.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/directive"
	"npf/internal/analysis/summary"
)

const Doc = `enforce the //npf:noalloc static allocation fence

Functions annotated //npf:noalloc, and everything they transitively call,
are rejected if they contain allocating constructs (make/new, growing
append, closure capture, interface boxing, string concat, fmt, map
literals). Annotate reviewed lines //npf:allocok. The registry of
runtime-gated hot paths (sim.Engine scheduling, the trace disabled path,
workload.Source draws) must keep their annotations: removing one is
itself a finding.`

var Analyzer = &analysis.Analyzer{
	Name:      "noalloc",
	Doc:       Doc,
	FactTypes: []analysis.Fact{(*Allocates)(nil), (*Analyzed)(nil)},
	Run:       run,
}

// Allocates marks a function containing an (unescaped) allocating
// construct; Why says which, as a call chain for transitive cases.
type Allocates struct {
	Why string
}

// AFact marks Allocates as a serializable analysis fact.
func (*Allocates) AFact() {}

// Analyzed is a package fact: the package went through noalloc, so a
// function there *without* an Allocates fact is proven allocation-free.
// Packages without it (std lib, vendored code) are unknown and rejected
// inside fences unless allowlisted.
type Analyzed struct{}

// AFact marks Analyzed as a serializable analysis fact.
func (*Analyzed) AFact() {}

// Required lists, per package, the runtime-alloc-gated hot-path functions
// ("Name" or "Recv.Name") that must stay annotated //npf:noalloc. These
// are exactly the paths the AllocsPerRun/benchmark gates measure; the
// static fence and the runtime gates cross-check each other through this
// table.
var Required = map[string][]string{
	"npf/internal/sim": {
		"Engine.At", "Engine.After", "Engine.Cancel",
	},
	"npf/internal/trace": {
		"Tracer.Begin", "Tracer.End", "Tracer.ArgInt",
		"Tracer.FaultMinted", "Tracer.FaultStageAt", "Tracer.FaultDone",
		"Tracer.FaultContext",
		"Counter.Inc", "Counter.Add", "Gauge.Set", "LatencyHist.Observe",
	},
	"npf/internal/workload": {
		"Source.NextOp", "Source.NextArrival",
	},
}

// allowedPkgs are unanalyzed packages whose functions are known
// allocation-free (pure arithmetic).
var allowedPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// finding is one allocating construct at a position.
type finding struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	g := summary.Build(pass.TypesInfo, pass.Files, true)

	fenced := make([]bool, len(g.Decls))  // //npf:noalloc roots
	trusted := make([]bool, len(g.Decls)) // //npf:allocok functions
	constructs := make([][]finding, len(g.Decls))
	for i, d := range g.Decls {
		fenced[i] = dirs.Allows(pass.Fset, "noalloc", d.Decl.Pos())
		trusted[i] = dirs.Allows(pass.Fset, "allocok", d.Decl.Pos())
		if !trusted[i] {
			constructs[i] = scanConstructs(pass, dirs, d.Decl)
		}
	}

	external := func(e summary.Edge) string { return externalWhy(pass, e) }
	skip := func(i int, e summary.Edge) bool {
		if trusted[i] {
			return true
		}
		return dirs.Allows(pass.Fset, "allocok", e.Pos)
	}
	reasons := g.Fixpoint(func(i int) string {
		if trusted[i] || len(constructs[i]) == 0 {
			return ""
		}
		return constructs[i][0].what
	}, external, skip)

	for i, d := range g.Decls {
		if reasons[i] != "" {
			pass.ExportObjectFact(d.Fn, &Allocates{Why: reasons[i]})
		}
	}
	pass.ExportPackageFact(&Analyzed{})

	checkRequired(pass, g, fenced)

	// Fence walk: from each //npf:noalloc root, report every unescaped
	// allocating construct and unprovable call in the reachable
	// same-package subgraph. Constructs are reported at their own
	// position (deduplicated across overlapping fences), naming the
	// fence root so the chain is actionable.
	reported := make(map[token.Pos]bool)
	inFence := make(map[int]bool)
	for root, isRoot := range fenced {
		if !isRoot {
			continue
		}
		rootLabel := summary.FuncLabel(g.Decls[root].Fn)
		queue := []int{root}
		visited := map[int]bool{root: true}
		for len(queue) > 0 {
			i := queue[0]
			queue = queue[1:]
			inFence[i] = true
			for _, f := range constructs[i] {
				if reported[f.pos] {
					continue
				}
				reported[f.pos] = true
				pass.Reportf(f.pos, "%s inside //npf:noalloc fence of %s (annotate the line //npf:allocok if reviewed)", f.what, rootLabel)
			}
			for _, e := range g.Edges[i] {
				if dirs.Allows(pass.Fset, "allocok", e.Pos) {
					continue
				}
				if e.Fn != nil {
					if j, ok := g.Index[e.Fn]; ok {
						if !trusted[j] && !visited[j] {
							visited[j] = true
							queue = append(queue, j)
						}
						continue
					}
				}
				if why := externalWhy(pass, e); why != "" && !reported[e.Pos] {
					reported[e.Pos] = true
					pass.Reportf(e.Pos, "%s inside //npf:noalloc fence of %s (annotate the line //npf:allocok if reviewed)", why, rootLabel)
				}
			}
		}
	}
	return nil, nil
}

// checkRequired enforces the hot-path registry: the functions listed for
// this package must exist and carry //npf:noalloc.
func checkRequired(pass *analysis.Pass, g *summary.Graph, fenced []bool) {
	req, ok := Required[pass.Pkg.Path()]
	if !ok {
		return
	}
	have := make(map[string]int, len(g.Decls))
	for i, d := range g.Decls {
		have[summary.FuncKey(d.Fn)] = i
	}
	for _, key := range req {
		i, ok := have[key]
		if !ok {
			pass.Reportf(pass.Files[0].Package, "registered hot path %s.%s not found: update the noalloc Required registry to follow the refactor", pass.Pkg.Path(), key)
			continue
		}
		if !fenced[i] {
			pass.Reportf(g.Decls[i].Decl.Pos(), "%s is a runtime-gated hot path and must carry //npf:noalloc (the static fence cross-checks the AllocsPerRun/bench gates)", key)
		}
	}
}

// externalWhy explains why a call leaving the package (or with no static
// callee) cannot be admitted into a fence; "" admits it.
func externalWhy(pass *analysis.Pass, e summary.Edge) string {
	if e.Fn == nil {
		return "dynamic call (allocation behavior unknown)"
	}
	fn := e.Fn
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		// Same-package callees are covered by the fence walk; bodyless
		// declarations are vanishingly rare here and treated as clean.
		return ""
	}
	var af Allocates
	if pass.ImportObjectFact(fn, &af) {
		return "call to " + crossLabel(fn) + " allocates: " + af.Why
	}
	path := fn.Pkg().Path()
	if allowedPkgs[path] {
		return ""
	}
	var an Analyzed
	if pass.ImportPackageFact(fn.Pkg(), &an) {
		return "" // analyzed and carries no Allocates fact: proven clean
	}
	if path == "fmt" {
		return "call to " + crossLabel(fn) + " (fmt allocates)"
	}
	return "call to " + crossLabel(fn) + " (package " + path + " has no allocation summaries)"
}

func crossLabel(fn *types.Func) string {
	label := summary.FuncLabel(fn)
	if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return label
}

// scanConstructs finds the allocating constructs in one declaration,
// skipping lines annotated //npf:allocok. Constructs inside function
// literals are attributed to the enclosing declaration: creating the
// closure inside a fence pins its body to the same contract.
func scanConstructs(pass *analysis.Pass, dirs *directive.Map, fd *ast.FuncDecl) []finding {
	info := pass.TypesInfo
	var out []finding
	add := func(pos token.Pos, what string) {
		if dirs.Allows(pass.Fset, "allocok", pos) {
			return
		}
		out = append(out, finding{pos: pos, what: what})
	}

	// Function-literal ranges, innermost-last, for attributing returns to
	// the right signature.
	type litScope struct {
		lit *ast.FuncLit
		sig *types.Signature
	}
	var lits []litScope
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if sig, ok := info.TypeOf(lit).(*types.Signature); ok {
				lits = append(lits, litScope{lit, sig})
			}
		}
		return true
	})
	declSig, _ := info.TypeOf(fd.Name).(*types.Signature)
	sigAt := func(pos token.Pos) *types.Signature {
		sig := declSig
		for _, ls := range lits { // later entries are inner on ties
			if ls.lit.Pos() <= pos && pos <= ls.lit.End() {
				sig = ls.sig
			}
		}
		return sig
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			scanCall(info, n, add)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstant(info, n) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			scanAssign(info, n, add)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) && boxes(info, info.TypeOf(name), n.Values[i]) {
					add(n.Values[i].Pos(), "interface boxing allocates")
				}
			}
		case *ast.ReturnStmt:
			sig := sigAt(n.Pos())
			if sig == nil || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				return true // naked or multi-value-call return
			}
			for i, res := range n.Results {
				if boxes(info, sig.Results().At(i).Type(), res) {
					add(res.Pos(), "interface boxing allocates")
				}
			}
		case *ast.FuncLit:
			if capturesVariables(info, n) {
				add(n.Pos(), "closure captures variables (allocates)")
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
	return out
}

// scanCall flags builtins (make/new/append), allocating conversions, and
// interface boxing of arguments.
func scanCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !isConstant(info, call) {
			if srcTV, ok := info.Types[call.Args[0]]; ok && srcTV.Type != nil {
				if what, bad := convAllocates(tv.Type, srcTV); bad {
					add(call.Pos(), what)
				}
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if len(call.Args) > 1 || call.Ellipsis.IsValid() {
					add(call.Pos(), "append may grow the backing array")
				}
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			}
			return
		}
	}
	// Boxing at argument positions (static and dynamic calls alike).
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			add(arg.Pos(), "interface boxing allocates")
		}
	}
}

func scanAssign(info *types.Info, n *ast.AssignStmt, add func(token.Pos, string)) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
		add(n.Pos(), "string concatenation allocates")
	}
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
				add(lhs.Pos(), "map assignment may allocate")
			}
		}
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if boxes(info, info.TypeOf(lhs), n.Rhs[i]) {
				add(n.Rhs[i].Pos(), "interface boxing allocates")
			}
		}
	}
}

// convAllocates classifies allocating type conversions.
func convAllocates(dst types.Type, src types.TypeAndValue) (string, bool) {
	if src.IsNil() {
		return "", false
	}
	dstU := dst.Underlying()
	srcU := src.Type.Underlying()
	if isStringType(dstU) {
		if !isStringType(srcU) {
			return "conversion to string allocates", true
		}
		return "", false
	}
	if _, ok := dstU.(*types.Slice); ok && isStringType(srcU) {
		return "string-to-slice conversion allocates", true
	}
	if types.IsInterface(dst) && !types.IsInterface(src.Type) {
		return "interface conversion allocates (boxing)", true
	}
	return "", false
}

// boxes reports whether assigning src to a dst-typed location converts a
// concrete value to an interface (an allocation unless the escape
// analysis gets lucky — the fence does not bet on luck).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || src == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	if _, ok := tv.Type.(*types.TypeParam); ok {
		return false
	}
	return true
}

// capturesVariables reports whether lit references variables declared
// outside it (other than package-level ones): those force a heap closure.
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringType(t.Underlying())
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
