package noalloc_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/noalloc"
)

// TestNoalloc covers the fence (every flagged construct, //npf:allocok
// escapes, transitive same-package reach, cross-package fact verdicts) and
// the Required hot-path registry via a fixture package at the real
// npf/internal/sim import path with two annotations removed.
func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "a", "npf/internal/sim")
}
