package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"npf/internal/analysis/directive"
)

const src = `package p

func f() {
	a := 1 //npf:orderinvariant
	//npf:wallclock — reviewed
	b := 2
	c := 3 // npf:tracesafe (not a directive: space after //)
	//npf: (empty name, ignored)
	d := 4
	_, _, _, _ = a, b, c, d
}
`

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// posOnLine returns a position on the given 1-based line.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

func TestDirectives(t *testing.T) {
	fset, f := parse(t)
	m := directive.ForFiles(fset, []*ast.File{f})
	cases := []struct {
		name string
		line int
		want bool
	}{
		{"orderinvariant", 4, true},  // trailing placement, same line
		{"orderinvariant", 5, true},  // covers the next line too
		{"orderinvariant", 6, false}, // but not two lines down
		{"wallclock", 6, true},       // preceding placement
		{"wallclock", 4, false},
		{"tracesafe", 7, false}, // space after // is not a directive
		{"realtime", 4, false},  // different name
	}
	for _, c := range cases {
		if got := m.Allows(fset, c.name, posOnLine(fset, f, c.line)); got != c.want {
			t.Errorf("Allows(%q, line %d) = %v, want %v", c.name, c.line, got, c.want)
		}
	}
}
