// Package directive parses the repo's `//npf:` comment annotations — the
// escape hatches the npflint analyzers honour when a human has reviewed a
// construct the machine cannot prove safe.
//
// Vocabulary (see README "Static analysis"):
//
//	//npf:orderinvariant  maporder: this map iteration's effects are
//	                      independent of iteration order
//	//npf:wallclock       detwall/detflow: this wall-clock / environment
//	                      read (or call into a clock-reaching helper) is
//	                      intentional (host-side tooling, not sim state)
//	//npf:realtime        simtime: this signature intentionally carries a
//	                      wall-clock type (e.g. the sim.Duration converter)
//	//npf:tracesafe       tracesafe: this raw tracer field access is known
//	                      nil-safe
//	//npf:noalloc         noalloc: this function (and everything it
//	                      transitively calls) must contain no allocating
//	                      construct — the static allocation fence
//	//npf:allocok         noalloc: reviewed escape; on a line, exempts the
//	                      line's constructs; on a function declaration,
//	                      makes the whole function a trusted boundary
//	//npf:probepure       probepure: this sampler-probe registration is
//	                      reviewed read-only even though the analyzer
//	                      cannot prove it
//
// A directive applies to the source line it sits on and to the line
// immediately below it, so both trailing and preceding placement work:
//
//	//npf:orderinvariant — reads are commutative
//	for k, v := range m { ... }
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment prefix shared by all npf annotations.
const Prefix = "//npf:"

type lineKey struct {
	file string
	line int
}

// Map records, per annotation name, the set of source lines it covers
// across a set of files.
type Map struct {
	lines map[string]map[lineKey]bool
}

// ForFiles scans the files' comments and returns the directive coverage
// map. Like standard Go directives, an annotation must start its comment
// with no space after `//`.
func ForFiles(fset *token.FileSet, files []*ast.File) *Map {
	m := &Map{lines: make(map[string]map[lineKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, Prefix) {
					continue
				}
				name := strings.TrimPrefix(text, Prefix)
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				p := fset.Position(c.Pos())
				if m.lines[name] == nil {
					m.lines[name] = make(map[lineKey]bool)
				}
				// The directive covers its own line (trailing placement)
				// and the next line (preceding placement).
				m.lines[name][lineKey{p.Filename, p.Line}] = true
				m.lines[name][lineKey{p.Filename, p.Line + 1}] = true
			}
		}
	}
	return m
}

// Allows reports whether annotation name covers the line containing pos.
func (m *Map) Allows(fset *token.FileSet, name string, pos token.Pos) bool {
	set := m.lines[name]
	if set == nil {
		return false
	}
	p := fset.Position(pos)
	return set[lineKey{p.Filename, p.Line}]
}
