// Package maporder defines an analyzer that flags order-dependent
// iteration over Go maps.
//
// Go randomizes map iteration order, so any map walk whose effects feed
// simulation state, scheduled events, trace spans, or rendered output is a
// replayability bug: two runs with the same seed diverge. The analyzer
// flags every `for range` over a map unless the loop is one of the
// provably order-invariant shapes below or carries an
// //npf:orderinvariant annotation:
//
//   - key-collect loops (`ks = append(ks, k)`) whose slice is subsequently
//     sorted in the same function — the canonical deterministic-walk idiom
//   - pure map-to-map transfers (`m2[k] = ...`)
//   - draining deletes (`delete(m, k)`)
package maporder

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"npf/internal/analysis/directive"
)

const Doc = `flag order-dependent iteration over maps

Map iteration order is randomized; loops whose effects reach sim state,
events, trace spans, or output must sort keys first. Collect-then-sort,
map-to-map transfer, and delete-only loops are recognized as safe; anything
else needs an //npf:orderinvariant annotation.`

var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		if _, ok := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !ok {
			return true
		}
		if dirs.Allows(pass.Fset, "orderinvariant", rs.For) {
			return true
		}
		switch classify(pass, rs, stack) {
		case safe:
			return true
		case collectUnsorted:
			pass.Reportf(rs.For, "map keys are collected but never sorted in this function; sort before use or annotate //npf:orderinvariant")
		default:
			pass.Reportf(rs.For, "iteration over map has order-dependent effects; sort the keys first or annotate //npf:orderinvariant")
		}
		return true
	})
	return nil, nil
}

type verdict int

const (
	unsafe verdict = iota
	safe
	collectUnsorted
)

// classify recognizes the order-invariant loop shapes.
func classify(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) verdict {
	stmts := rs.Body.List
	// Unwrap a filtering if (`if n != "total" { ... }`) — a guard that
	// skips some keys doesn't make the surviving per-key effect
	// order-dependent.
	for len(stmts) == 1 {
		ifStmt, ok := stmts[0].(*ast.IfStmt)
		if !ok || ifStmt.Else != nil || ifStmt.Init != nil {
			break
		}
		stmts = ifStmt.Body.List
	}
	if len(stmts) != 1 {
		return unsafe
	}
	switch st := stmts[0].(type) {
	case *ast.ExprStmt:
		// delete(m, k): removing every visited key is order-invariant.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 2 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return safe
				}
			}
		}
	case *ast.AssignStmt:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return unsafe
		}
		// m2[k] = ...: writing through a map index commutes across
		// iterations (each key is visited once).
		if ix, ok := st.Lhs[0].(*ast.IndexExpr); ok {
			if _, ok := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); ok {
				return safe
			}
		}
		// ks = append(ks, k): safe iff ks is sorted later in the function.
		if obj := collectTarget(pass, st); obj != nil {
			if sortedAfter(pass, enclosingFuncBody(stack), rs, obj) {
				return safe
			}
			return collectUnsorted
		}
	}
	return unsafe
}

// collectTarget returns the slice variable of a `ks = append(ks, ...)`
// statement, or nil if st is not that shape.
func collectTarget(pass *analysis.Pass, st *ast.AssignStmt) types.Object {
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	lobj := pass.TypesInfo.ObjectOf(lhs)
	if lobj == nil || pass.TypesInfo.ObjectOf(dst) != lobj {
		return nil
	}
	return lobj
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the inspector stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort/slices function
// after pos within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos ast.Node, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos.End() || found {
			return !found
		}
		var fn *types.Func
		switch callee := call.Fun.(type) {
		case *ast.SelectorExpr:
			fn, _ = pass.TypesInfo.Uses[callee.Sel].(*types.Func)
		case *ast.Ident:
			fn, _ = pass.TypesInfo.Uses[callee].(*types.Func)
		case *ast.IndexExpr: // explicit instantiation, e.g. slices.Sort[[]string]
			if sel, ok := callee.X.(*ast.SelectorExpr); ok {
				fn, _ = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			}
		}
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
