// Package a exercises the maporder analyzer: map iteration order is
// randomized, so order-dependent loop effects break deterministic replay.
package a

import (
	"fmt"
	"sort"
)

func bad(m map[string]int) {
	for k, v := range m { // want `iteration over map has order-dependent effects`
		fmt.Println(k, v)
	}
}

func collectedButNeverSorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want `map keys are collected but never sorted`
		ks = append(ks, k)
	}
	return ks
}

func sortedWalk(m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k, m[k])
	}
}

func filteredCollect(m map[string]int) []string {
	var ks []string
	for k := range m {
		if k != "total" {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

func transfer(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func annotated(m map[string]int) int {
	sum := 0
	//npf:orderinvariant — summation is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}
