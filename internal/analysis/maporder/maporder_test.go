package maporder_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "a")
}
