package detwall_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/detwall"
)

func TestDetwall(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detwall.Analyzer, "a", "cmd/tool")
}
