// Package detwall defines an analyzer that forbids wall-clock and other
// nondeterminism sources in the simulation layers.
//
// Every result the simulator produces must be a pure function of (scenario,
// seed): virtual time comes from sim.Engine, randomness from the engine's
// seeded RNG splits. A single time.Now() or global math/rand draw silently
// breaks byte-identical replay, so reaching for the host's clock, the global
// rand source, or the process environment is banned in the root package and
// internal/... — only cmd/ binaries (which report real elapsed time to
// humans) and _test.go files are allowed, plus sites annotated
// //npf:wallclock.
package detwall

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"npf/internal/analysis/directive"
)

const Doc = `forbid wall-clock, global rand, and environment reads in sim layers

Simulation code must be deterministic given (scenario, seed): virtual time
comes from sim.Engine and randomness from engine-owned seeded RNGs. This
analyzer flags uses of time.Now/Since/Sleep/..., the global math/rand
source, and os.Getenv outside cmd/ and _test.go. Annotate intentional uses
with //npf:wallclock.`

var Analyzer = &analysis.Analyzer{
	Name:     "detwall",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// banned maps package path → banned function names. An empty set bans
// every package-level function except those in allowedInPkg.
var banned = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
	// The global source draws are banned; explicit constructors
	// (rand.New, rand.NewSource, ...) remain available for seeded use.
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// allowedInPkg lists the explicitly-seeded constructors that stay legal in
// the rand packages.
var allowedInPkg = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// IsSource reports whether fn is one of the banned nondeterminism entry
// points: a package-level wall-clock read, global-rand draw, or
// environment access. detflow reuses this table as its transitive-taint
// seed.
func IsSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false // methods are fine; only package-level sources are banned
	}
	names, isBanned := banned[fn.Pkg().Path()]
	if !isBanned {
		return false
	}
	if names == nil {
		return !allowedInPkg[fn.Name()]
	}
	return names[fn.Name()]
}

func run(pass *analysis.Pass) (interface{}, error) {
	if AllowlistedPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		obj := pass.TypesInfo.Uses[id]
		fn, ok := obj.(*types.Func)
		if !ok || !IsSource(fn) {
			return
		}
		file := pass.Fset.Position(id.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			return
		}
		if dirs.Allows(pass.Fset, "wallclock", id.Pos()) {
			return
		}
		pass.Reportf(id.Pos(), "%s.%s is nondeterministic: sim layers must use virtual time / engine-owned RNG (annotate //npf:wallclock if intentional)",
			fn.Pkg().Path(), fn.Name())
	})
	return nil, nil
}

// AllowlistedPackage reports whether the package is a cmd/ binary, where
// wall-clock reporting to humans is expected. detflow applies the same
// reporting exemption.
func AllowlistedPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}
