// Package main is a cmd/ binary: reporting real elapsed time to humans is
// allowlisted wholesale.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
