package a

import "time"

// Test files may read the wall clock freely (timeouts, benchmarks).
func timeoutAt() time.Time { return time.Now() }
