// Package a exercises the detwall analyzer: wall-clock, global rand, and
// environment reads are banned in sim-layer code.
package a

import (
	"math/rand"
	"os"
	"time"
)

func bad() {
	_ = time.Now()              // want `time\.Now is nondeterministic`
	_ = time.Since(time.Time{}) // want `time\.Since is nondeterministic`
	time.Sleep(1)               // want `time\.Sleep is nondeterministic`
	_ = rand.Intn(4)            // want `math/rand\.Intn is nondeterministic`
	_ = os.Getenv("NPF_DEBUG")  // want `os\.Getenv is nondeterministic`
	f := time.Now               // want `time\.Now is nondeterministic`
	_ = f
}

func allowed() {
	// Explicitly seeded sources are the sanctioned form of randomness.
	r := rand.New(rand.NewSource(7))
	_ = r.Intn(4)
	// Reviewed wall-clock reads can be annotated.
	_ = time.Now() //npf:wallclock
	//npf:wallclock — host-side progress logging, never reaches sim state
	_ = time.Now()
}
