package xengine_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/xengine"
)

func TestXengine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), xengine.Analyzer, "a", "sim", "cmd/tool")
}
