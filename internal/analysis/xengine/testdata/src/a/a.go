// Package a is a sim-layer fixture: every host-concurrency construct must
// be flagged unless annotated.
package a

import (
	"sync" // want `import of sync in a sim-layer package`
)

var mu sync.Mutex

var pipe chan int // want `channel type in a sim-layer package`

func spawn() {
	go spinner() // want `go statement in a sim-layer package`
}

func spinner() {}

func sendRecv() {
	pipe <- 1  // want `channel send in a sim-layer package`
	_ = <-pipe // want `channel receive in a sim-layer package`
	select {}  // want `select statement in a sim-layer package`
}

func annotated() {
	//npf:xengine — reviewed: single-threaded setup before any engine runs
	go spinner()
}
