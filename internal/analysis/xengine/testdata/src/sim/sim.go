// Package sim stands in for the PDES coordinator: a "sim" path segment is
// allowlisted, so nothing here is flagged.
package sim

import "sync"

var mu sync.Mutex

func fanOut(work []func()) {
	done := make(chan struct{})
	for _, w := range work {
		w := w
		go func() { w(); done <- struct{}{} }()
	}
	for range work {
		<-done
	}
}
