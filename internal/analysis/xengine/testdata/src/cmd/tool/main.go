// Command tool stands in for a cmd/ binary, where host concurrency (worker
// pools around whole simulations) is expected; nothing here is flagged.
package main

import "sync"

func main() {
	var wg sync.WaitGroup
	out := make(chan int, 1)
	wg.Add(1)
	go func() { defer wg.Done(); out <- 1 }()
	wg.Wait()
	<-out
}
