// Package xengine defines an analyzer that fences the PDES partition
// boundary: simulation-layer packages must not reach for host concurrency.
//
// Under npf.WithEngines(n) a cluster's hosts are partitioned across
// per-partition sim.Engines that run on their own goroutines and
// synchronize conservatively through the fabric lookahead window. The
// determinism argument (DESIGN §S19) rests on every cross-engine
// interaction flowing through the timestamped partition mailbox
// (sim.Group.Post / sim.Engine.Call), which is drained in a fixed
// (timestamp, sender, sequence) order. A goroutine, channel, or sync/atomic
// use anywhere else in the sim layer is a side channel around that order:
// it may look correct single-threaded and silently break byte-identical
// replay the moment a second engine thread exists. Only internal/sim (the
// coordinator itself), internal/bench (the job pool around whole
// simulations), cmd/ binaries, and _test.go files may use them; annotate
// reviewed exceptions with //npf:xengine.
package xengine

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"npf/internal/analysis/directive"
)

const Doc = `forbid host concurrency in sim-layer packages (cross-engine state must use the partition mailbox)

Partitioned runs replay byte-identically because every cross-engine
interaction goes through the sim.Group mailbox, drained in (timestamp,
sender, sequence) order. Goroutines, channels, select, and sync/atomic in
sim-layer packages bypass that order; they are reserved for internal/sim,
internal/bench, cmd/, and _test.go files. Annotate intentional uses with
//npf:xengine.`

var Analyzer = &analysis.Analyzer{
	Name:     "xengine",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// bannedImports are the host-synchronization packages whose presence in a
// sim-layer file is itself the violation, independent of call sites.
var bannedImports = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if allowlistedPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	report := func(pos token.Pos, what string) {
		file := pass.Fset.Position(pos).Filename
		if strings.HasSuffix(file, "_test.go") {
			return
		}
		if dirs.Allows(pass.Fset, "xengine", pos) {
			return
		}
		pass.Reportf(pos, "%s in a sim-layer package: cross-engine interaction must go through the partition mailbox (sim.Group.Post / sim.Engine.Call); annotate //npf:xengine if intentional", what)
	}
	ins.Preorder([]ast.Node{
		(*ast.GoStmt)(nil), (*ast.SelectStmt)(nil), (*ast.SendStmt)(nil),
		(*ast.UnaryExpr)(nil), (*ast.ChanType)(nil), (*ast.ImportSpec)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.SelectStmt:
			report(n.Pos(), "select statement")
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive")
			}
		case *ast.ChanType:
			report(n.Pos(), "channel type")
		case *ast.ImportSpec:
			if path, err := strconv.Unquote(n.Path.Value); err == nil && bannedImports[path] {
				report(n.Pos(), "import of "+path)
			}
		}
	})
	return nil, nil
}

// allowlistedPackage reports whether the package legitimately owns host
// concurrency: the PDES coordinator itself, the bench job pool, analysis
// tooling, and cmd/ binaries.
func allowlistedPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "cmd", "sim", "bench", "analysis":
			return true
		}
	}
	return false
}
