package driver

import "testing"

// TestSortDiagnostics pins the numeric sort the -json artifact depends on:
// x.go:9 sorts before x.go:10 (a lexicographic sort on the formatted Pos
// would invert them), files group first, and (analyzer, message) break
// position ties deterministically.
func TestSortDiagnostics(t *testing.T) {
	d := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Message: msg, file: file, line: line, col: col}
	}
	diags := []Diagnostic{
		d("b.go", 1, 1, "detwall", "z"),
		d("a.go", 10, 1, "detwall", "later line"),
		d("a.go", 9, 2, "detwall", "earlier line"),
		d("a.go", 9, 2, "detflow", "tie broken by analyzer"),
	}
	SortDiagnostics(diags)
	var got []string
	for _, x := range diags {
		got = append(got, x.Message)
	}
	want := []string{"tie broken by analyzer", "earlier line", "later line", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort order = %v; want %v", got, want)
		}
	}
}
