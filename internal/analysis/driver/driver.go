// Package driver loads Go packages and runs go/analysis analyzers over
// them. It is a small, self-contained replacement for the parts of
// golang.org/x/tools that GOROOT does not vendor (go/packages and the
// multichecker): packages are discovered with `go list -deps -export
// -json`, target packages are parsed and type-checked from source, and
// their dependencies are resolved from the compiler's export data — the
// same model `go vet` uses.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// DepOnly marks an in-module dependency that was loaded (and
	// analyzed, so its facts exist) without being named by the patterns;
	// its diagnostics are suppressed.
	DepOnly bool
}

// Diagnostic is one analyzer finding, with its position resolved.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"` // file:line:col, file relative to the working directory when possible
	Message  string `json:"message"`

	// Numeric sort keys (file, line, col), kept alongside the formatted
	// Pos so the -json stream sorts numerically ("x.go:9" before
	// "x.go:10") and stays byte-reproducible.
	file      string
	line, col int
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load runs `go list -deps -export -json patterns...` in dir (the module
// root, or "" for the current directory) and returns the matched packages
// plus their in-module dependencies (marked DepOnly) — parsed and
// type-checked from source, with remaining imports satisfied from export
// data. Packages come back in `go list -deps` order, i.e. dependencies
// before dependents, which is what lets analyzer facts flow bottom-up
// through the graph. Test files are not loaded; the analyzers treat
// _test.go as allowlisted anyway. Vendored and standard-library deps stay
// on the export-data path: no facts are computed for them, which the
// fact-based analyzers handle with explicit allowlists.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	vendorDir := string(filepath.Separator) + "vendor" + string(filepath.Separator)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.DepOnly && strings.Contains(lp.Dir, vendorDir) {
			continue
		}
		pkg, err := checkFromSource(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = lp.DepOnly
		imp.Register(pkg.Types)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ListExports resolves the packages (plus transitive dependencies) to
// their compiler export data files via `go list -deps -export`.
func ListExports(paths []string) (map[string]string, error) {
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	listed, err := goList("", sorted)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var listed []*listedPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
	}
	return listed, nil
}

func checkFromSource(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter resolves imports from compiler export data files,
// preferring packages already type-checked from source.
type exportImporter struct {
	gc  types.Importer
	mem map[string]*types.Package
}

// NewExportImporter returns an importer that serves packages from mem
// (when registered via Register) and otherwise reads gc export data files
// from the exports map (import path → file), as produced by
// `go list -export`.
func NewExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:  importer.ForCompiler(fset, "gc", lookup),
		mem: make(map[string]*types.Package),
	}
}

// Register makes a source-checked package resolvable by later imports.
func (ei *exportImporter) Register(pkg *types.Package) { ei.mem[pkg.Path()] = pkg }

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ei.mem[path]; ok {
		return pkg, nil
	}
	return ei.gc.Import(path)
}

// Run executes the analyzers (and, first, their transitive requirements)
// over each package — in the dependency order Load produced, so facts a
// package exports are serialized before any dependent imports them — and
// returns the diagnostics of the non-DepOnly packages in a stable
// numeric (file, line, col, analyzer) sort. relDir is the directory
// diagnostics' file names are made relative to ("" keeps them absolute).
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, relDir string) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	RegisterFactTypes(analyzers)
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers, relDir, facts)
		if err != nil {
			return nil, err
		}
		if !pkg.DepOnly {
			diags = append(diags, ds...)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diags by (file, line, column, analyzer, message)
// with numeric line/column comparison, the byte-reproducible order the
// -json stream and CI diffs rely on.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RunPackage executes the analyzers over one package, running required
// analyzers (e.g. the inspector) first and threading their results
// through ResultOf. facts carries analyzer facts between packages of one
// driver run; nil gives the package an isolated store (cross-package
// facts simply absent), which only makes sense for fact-free analyzers.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer, relDir string, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		RegisterFactTypes(analyzers)
		facts = NewFacts()
	}
	facts.begin(pkg.Types)
	results := make(map[*analysis.Analyzer]interface{})
	var diags []Diagnostic
	var run func(a *analysis.Analyzer, report bool) error
	ran := make(map[*analysis.Analyzer]bool)
	run = func(a *analysis.Analyzer, report bool) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		resultOf := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if !report {
					return
				}
				p := pkg.Fset.Position(d.Pos)
				file := relPath(p.Filename, relDir)
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      fmt.Sprintf("%s:%d:%d", file, p.Line, p.Column),
					Message:  d.Message,
					file:     file,
					line:     p.Line,
					col:      p.Column,
				})
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
				return facts.importObjectFact(a, obj, f)
			},
			ExportObjectFact: func(obj types.Object, f analysis.Fact) {
				facts.exportObjectFact(a, obj, f)
			},
			ImportPackageFact: func(p *types.Package, f analysis.Fact) bool {
				return facts.importPackageFact(a, p, f)
			},
			ExportPackageFact: func(f analysis.Fact) {
				facts.exportPackageFact(a, f)
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return facts.allObjectFacts(a) },
			AllPackageFacts: func() []analysis.PackageFact { return facts.allPackageFacts(a) },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		// Top-level analyzers report; requirement-only analyzers don't.
		if err := run(a, true); err != nil {
			return nil, err
		}
	}
	if err := facts.finish(analyzers); err != nil {
		return nil, err
	}
	return diags, nil
}

func relPath(file, relDir string) string {
	if relDir != "" {
		if rel, err := filepath.Rel(relDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return file
}
