// Package fa exports functions and a method whose facts fb imports.
package fa

// Box is a fixture receiver type.
type Box struct{ V int }

// Get is a method: its fact is keyed "Box.Get".
func (b *Box) Get() int { return b.V }

// Make is a package-level function: its fact is keyed "Make".
func Make() *Box { return &Box{} }
