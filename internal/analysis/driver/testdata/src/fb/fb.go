// Package fb imports fa's facts through the serialized store: each want
// below only fires if the fact survived the encode/decode round trip.
package fb

import "fa"

// Use calls into fa at every cross-package shape factrt reports on.
func Use() int {
	b := fa.Make() // want `fact fa\.Make round-tripped`
	return b.Get() // want `fact fa\.Box\.Get round-tripped`
}
