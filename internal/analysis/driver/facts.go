// Facts: the driver's cross-package fact store. Analyzers export facts
// about objects and packages while a package is analyzed; when the driver
// finishes a package it gob-serializes that package's facts and discards
// the in-memory form, so every cross-package import decodes from bytes —
// the same round-trip the real go vet facts pipeline performs through
// compiler export data. Loading packages in `go list -deps` order (deps
// before dependents) makes the bottom-up propagation sound.

package driver

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// Facts is one driver run's fact store. It is not safe for concurrent use;
// the driver analyzes packages sequentially in dependency order.
type Facts struct {
	// encoded holds the serialized facts of every finished package,
	// keyed by (package path, analyzer name).
	encoded map[factsKey][]byte
	// decoded caches lazily-decoded fact sets for imported packages.
	decoded map[factsKey]*factSet
	// cur accumulates the in-flight package's facts per analyzer.
	cur    map[string]*factSet
	curPkg *types.Package
}

type factsKey struct {
	pkg      string
	analyzer string
}

type factSet struct {
	obj map[types.Object]map[reflect.Type]analysis.Fact
	pkg map[reflect.Type]analysis.Fact
}

func newFactSet() *factSet {
	return &factSet{
		obj: make(map[types.Object]map[reflect.Type]analysis.Fact),
		pkg: make(map[reflect.Type]analysis.Fact),
	}
}

// NewFacts returns an empty fact store for one driver run.
func NewFacts() *Facts {
	return &Facts{
		encoded: make(map[factsKey][]byte),
		decoded: make(map[factsKey]*factSet),
	}
}

// factRecord is the serialized form of one fact. Object is "" for a
// package fact, "Name" for a package-level object, and "Recv.Name" for a
// method (pointer receivers dereferenced).
type factRecord struct {
	Object string
	Fact   analysis.Fact
}

// gob registration is process-global and panics on duplicates, so guard it.
var (
	gobMu         sync.Mutex
	gobRegistered = make(map[reflect.Type]bool)
)

// RegisterFactTypes registers every fact type reachable from the analyzers
// (including their transitive requirements) with gob.
func RegisterFactTypes(analyzers []*analysis.Analyzer) {
	gobMu.Lock()
	defer gobMu.Unlock()
	seen := make(map[*analysis.Analyzer]bool)
	var reg func(a *analysis.Analyzer)
	reg = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if !gobRegistered[t] {
				gob.Register(f)
				gobRegistered[t] = true
			}
		}
		for _, req := range a.Requires {
			reg(req)
		}
	}
	for _, a := range analyzers {
		reg(a)
	}
}

// begin starts accumulating facts for pkg.
func (fs *Facts) begin(pkg *types.Package) {
	fs.curPkg = pkg
	fs.cur = make(map[string]*factSet)
}

// finish serializes the current package's facts (one blob per analyzer)
// and drops the in-memory form: later packages see these facts only
// through the decoder, so serialization is exercised on every edge.
func (fs *Facts) finish(analyzers []*analysis.Analyzer) error {
	if fs.curPkg == nil {
		return nil
	}
	seen := make(map[string]bool)
	var names []string
	var collect func(a *analysis.Analyzer)
	collect = func(a *analysis.Analyzer) {
		if seen[a.Name] {
			return
		}
		seen[a.Name] = true
		names = append(names, a.Name)
		for _, req := range a.Requires {
			collect(req)
		}
	}
	for _, a := range analyzers {
		collect(a)
	}
	sort.Strings(names)
	for _, name := range names {
		set := fs.cur[name]
		if set == nil || (len(set.obj) == 0 && len(set.pkg) == 0) {
			continue
		}
		data, err := encodeFactSet(set)
		if err != nil {
			return fmt.Errorf("encoding %s facts for %s: %v", name, fs.curPkg.Path(), err)
		}
		fs.encoded[factsKey{fs.curPkg.Path(), name}] = data
	}
	fs.cur = nil
	fs.curPkg = nil
	return nil
}

func encodeFactSet(set *factSet) ([]byte, error) {
	var records []factRecord
	//npf:orderinvariant — records are sorted by (object key, fact type) below
	for obj, byType := range set.obj {
		key, ok := objectKey(obj)
		if !ok {
			continue // non-addressable from outside the package
		}
		for _, f := range byType {
			records = append(records, factRecord{Object: key, Fact: f})
		}
	}
	for _, f := range set.pkg {
		records = append(records, factRecord{Object: "", Fact: f})
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Object != records[j].Object {
			return records[i].Object < records[j].Object
		}
		return reflect.TypeOf(records[i].Fact).String() < reflect.TypeOf(records[j].Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFactSet(data []byte, pkg *types.Package) (*factSet, error) {
	var records []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return nil, err
	}
	set := newFactSet()
	for _, rec := range records {
		if rec.Object == "" {
			set.pkg[reflect.TypeOf(rec.Fact)] = rec.Fact
			continue
		}
		obj := resolveObjectKey(pkg, rec.Object)
		if obj == nil {
			continue // declaration removed or renamed; drop the fact
		}
		byType := set.obj[obj]
		if byType == nil {
			byType = make(map[reflect.Type]analysis.Fact)
			set.obj[obj] = byType
		}
		byType[reflect.TypeOf(rec.Fact)] = rec.Fact
	}
	return set, nil
}

// objectKey names obj relative to its package: "Name" for package-level
// objects, "Recv.Name" for methods. Objects that are not reachable by name
// from importing packages (locals, unexported receivers are still fine —
// facts are keyed, not access-controlled) return ok=false when they cannot
// be expressed in this scheme.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := recvNamed(fn); recv != nil {
			return recv.Obj().Name() + "." + fn.Name(), true
		}
	}
	// Package-scope objects only; locals are not addressable across
	// packages.
	if obj.Pkg().Scope().Lookup(obj.Name()) != obj {
		return "", false
	}
	return obj.Name(), true
}

// resolveObjectKey is objectKey's inverse against pkg's scope.
func resolveObjectKey(pkg *types.Package, key string) types.Object {
	for i := 0; i < len(key); i++ {
		if key[i] != '.' {
			continue
		}
		tname, ok := pkg.Scope().Lookup(key[:i]).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tname.Type().(*types.Named)
		if !ok {
			return nil
		}
		method := key[i+1:]
		for m := 0; m < named.NumMethods(); m++ {
			if named.Method(m).Name() == method {
				return named.Method(m)
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(key)
}

// recvNamed returns the named receiver type of a method, dereferencing a
// pointer receiver, or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// setFor returns the fact set holding pkg's facts for analyzer name: the
// live set for the package under analysis, a decoded snapshot otherwise.
func (fs *Facts) setFor(pkg *types.Package, name string) *factSet {
	if pkg == fs.curPkg {
		return fs.cur[name]
	}
	key := factsKey{pkg.Path(), name}
	if set, ok := fs.decoded[key]; ok {
		return set
	}
	data, ok := fs.encoded[key]
	if !ok {
		fs.decoded[key] = nil
		return nil
	}
	set, err := decodeFactSet(data, pkg)
	if err != nil {
		// A decode failure means a fact type changed shape mid-run;
		// treat as absent rather than aborting the whole sweep.
		set = nil
	}
	fs.decoded[key] = set
	return set
}

func (fs *Facts) importObjectFact(a *analysis.Analyzer, obj types.Object, ptr analysis.Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	set := fs.setFor(obj.Pkg(), a.Name)
	if set == nil {
		return false
	}
	f := set.obj[obj][reflect.TypeOf(ptr)]
	if f == nil {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

func (fs *Facts) exportObjectFact(a *analysis.Analyzer, obj types.Object, f analysis.Fact) {
	if obj == nil {
		panic(fmt.Sprintf("%s: ExportObjectFact(nil, %T)", a.Name, f))
	}
	if fs.curPkg == nil || obj.Pkg() != fs.curPkg {
		panic(fmt.Sprintf("%s: ExportObjectFact on %v, which is not from the package under analysis", a.Name, obj))
	}
	set := fs.cur[a.Name]
	if set == nil {
		set = newFactSet()
		fs.cur[a.Name] = set
	}
	byType := set.obj[obj]
	if byType == nil {
		byType = make(map[reflect.Type]analysis.Fact)
		set.obj[obj] = byType
	}
	byType[reflect.TypeOf(f)] = f
}

func (fs *Facts) importPackageFact(a *analysis.Analyzer, pkg *types.Package, ptr analysis.Fact) bool {
	if pkg == nil {
		return false
	}
	set := fs.setFor(pkg, a.Name)
	if set == nil {
		return false
	}
	f := set.pkg[reflect.TypeOf(ptr)]
	if f == nil {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

func (fs *Facts) exportPackageFact(a *analysis.Analyzer, f analysis.Fact) {
	if fs.curPkg == nil {
		panic(fmt.Sprintf("%s: ExportPackageFact outside a package run", a.Name))
	}
	set := fs.cur[a.Name]
	if set == nil {
		set = newFactSet()
		fs.cur[a.Name] = set
	}
	set.pkg[reflect.TypeOf(f)] = f
}

// allObjectFacts returns the current package's object facts for analyzer a
// in a deterministic (object-key, fact-type) order.
func (fs *Facts) allObjectFacts(a *analysis.Analyzer) []analysis.ObjectFact {
	set := fs.cur[a.Name]
	if set == nil {
		return nil
	}
	var out []analysis.ObjectFact
	//npf:orderinvariant — facts are sorted by (object key, fact type) below
	for obj, byType := range set.obj {
		for _, f := range byType {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, _ := objectKey(out[i].Object)
		kj, _ := objectKey(out[j].Object)
		if ki != kj {
			return ki < kj
		}
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}

// allPackageFacts returns the current package's package facts for analyzer
// a in deterministic fact-type order.
func (fs *Facts) allPackageFacts(a *analysis.Analyzer) []analysis.PackageFact {
	set := fs.cur[a.Name]
	if set == nil || fs.curPkg == nil {
		return nil
	}
	var out []analysis.PackageFact
	for _, f := range set.pkg {
		out = append(out, analysis.PackageFact{Package: fs.curPkg, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}
