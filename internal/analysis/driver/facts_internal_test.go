package driver

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// testFact is a throwaway fact type for serialization tests.
type testFact struct{ Msg string }

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

const factSrc = `package p

type T struct{ n int }

func (t *T) M() int { return t.n }

func F() {}

var V int
`

func checkSnippet(t *testing.T) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", factSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func methodM(t *testing.T, pkg *types.Package) types.Object {
	t.Helper()
	named := pkg.Scope().Lookup("T").(*types.TypeName).Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "M" {
			return named.Method(i)
		}
	}
	t.Fatal("method M not found")
	return nil
}

// TestObjectKey checks the "Name"/"Recv.Name" scheme and its inverse.
func TestObjectKey(t *testing.T) {
	pkg := checkSnippet(t)
	mObj := methodM(t, pkg)
	cases := []struct {
		obj types.Object
		key string
	}{
		{pkg.Scope().Lookup("F"), "F"},
		{pkg.Scope().Lookup("V"), "V"},
		{mObj, "T.M"},
	}
	for _, c := range cases {
		key, ok := objectKey(c.obj)
		if !ok || key != c.key {
			t.Errorf("objectKey(%v) = %q, %v; want %q, true", c.obj, key, ok, c.key)
		}
		if got := resolveObjectKey(pkg, key); got != c.obj {
			t.Errorf("resolveObjectKey(%q) = %v; want %v", key, got, c.obj)
		}
	}

	// The receiver variable is function-local: not addressable across
	// packages, so it has no key.
	recv := mObj.Type().(*types.Signature).Recv()
	if key, ok := objectKey(recv); ok {
		t.Errorf("objectKey(receiver) = %q, true; want ok=false", key)
	}
	if got := resolveObjectKey(pkg, "T.Missing"); got != nil {
		t.Errorf("resolveObjectKey(T.Missing) = %v; want nil", got)
	}
}

// TestFactSetRoundTrip encodes a fact set and decodes it against the same
// package, checking fact payloads survive and the encoding is
// byte-deterministic.
func TestFactSetRoundTrip(t *testing.T) {
	pkg := checkSnippet(t)
	fObj := pkg.Scope().Lookup("F")
	mObj := methodM(t, pkg)
	ft := reflect.TypeOf(&testFact{})

	set := newFactSet()
	set.obj[fObj] = map[reflect.Type]analysis.Fact{ft: &testFact{Msg: "on F"}}
	set.obj[mObj] = map[reflect.Type]analysis.Fact{ft: &testFact{Msg: "on T.M"}}
	set.pkg[ft] = &testFact{Msg: "pkg"}

	data, err := encodeFactSet(set)
	if err != nil {
		t.Fatal(err)
	}
	again, err := encodeFactSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("encodeFactSet is not deterministic")
	}

	got, err := decodeFactSet(data, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for obj, msg := range map[types.Object]string{fObj: "on F", mObj: "on T.M"} {
		f, _ := got.obj[obj][ft].(*testFact)
		if f == nil || f.Msg != msg {
			t.Errorf("decoded fact for %v = %+v; want Msg %q", obj, f, msg)
		}
	}
	if f, _ := got.pkg[ft].(*testFact); f == nil || f.Msg != "pkg" {
		t.Errorf("decoded package fact = %+v; want Msg \"pkg\"", got.pkg[ft])
	}
}

// TestDecodeDropsUnresolvable: a fact keyed by a declaration that no longer
// exists is dropped silently, not an error.
func TestDecodeDropsUnresolvable(t *testing.T) {
	pkg := checkSnippet(t)
	var buf bytes.Buffer
	records := []factRecord{{Object: "Missing", Fact: &testFact{Msg: "gone"}}}
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		t.Fatal(err)
	}
	got, err := decodeFactSet(buf.Bytes(), pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.obj) != 0 {
		t.Errorf("decoded %d object facts; want 0 (unresolvable key dropped)", len(got.obj))
	}
}
