package driver_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/summary"
)

// mark is the fact the round-trip analyzer attaches to every declaration.
type mark struct{ Seen string }

func (*mark) AFact() {}

// factrt exports a mark for every function in a package and, at each
// cross-package call site, reports the imported fact. Because the driver
// serializes a package's facts when it finishes and decodes them on import,
// a diagnostic in the downstream fixture proves the full gob round trip:
// export → encode → decode → import, including the "Recv.Name" method key.
var factrt = &analysis.Analyzer{
	Name:      "factrt",
	Doc:       "round-trips object facts across the fixture package graph",
	FactTypes: []analysis.Fact{(*mark)(nil)},
	Run: func(pass *analysis.Pass) (interface{}, error) {
		g := summary.Build(pass.TypesInfo, pass.Files, true)
		for _, d := range g.Decls {
			pass.ExportObjectFact(d.Fn, &mark{Seen: pass.Pkg.Path() + "." + summary.FuncLabel(d.Fn)})
		}
		for i := range g.Decls {
			for _, e := range g.Edges[i] {
				if e.Fn == nil || e.Fn.Pkg() == nil || e.Fn.Pkg() == pass.Pkg {
					continue
				}
				var m mark
				if pass.ImportObjectFact(e.Fn, &m) {
					pass.Reportf(e.Pos, "fact %s round-tripped", m.Seen)
				}
			}
		}
		return nil, nil
	},
}

func TestFactRoundTrip(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), factrt, "fb")
}
