// Package tracesafe defines an analyzer that keeps tracer access on the
// nil-safe path.
//
// A disabled tracer is a nil *trace.Tracer: every method is nil-safe, so
// instrumented hot paths cost one pointer comparison when tracing is off.
// The same contract covers every handle type the tracer hands out — Counter,
// Gauge, LatencyHist, and Sampler are all nil when obtained from a disabled
// tracer. Direct field access (t.MaxSpans = ..., s.MaxSamples = ...) breaks
// that contract — it panics the moment tracing is disabled. Outside package
// trace, fields of these types may only be touched under an Enabled() guard
// (or an explicit //npf:tracesafe annotation); everything else goes through
// the nil-safe methods.
package tracesafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"npf/internal/analysis/directive"
)

const Doc = `require nil-safe tracer access outside package trace

A nil *trace.Tracer is the disabled state; methods are nil-safe but raw
field access panics. The same holds for every handle the tracer hands out
(Counter, Gauge, LatencyHist, Sampler). Guard direct field access with
Enabled() or annotate //npf:tracesafe.`

var Analyzer = &analysis.Analyzer{
	Name:     "tracesafe",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The trace package owns the representation.
	if path := pass.Pkg.Path(); path == "trace" || strings.HasSuffix(path, "/trace") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		sel := n.(*ast.SelectorExpr)
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		name, ok := traceHandle(selection.Recv())
		if !ok {
			return true
		}
		if dirs.Allows(pass.Fset, "tracesafe", sel.Pos()) {
			return true
		}
		if guardedByEnabled(pass, stack, sel.Pos()) {
			return true
		}
		noun := "handle"
		if name == "Tracer" {
			noun = "tracer"
		}
		pass.Reportf(sel.Pos(), "direct field access on *trace.%s panics when tracing is disabled (nil %s); guard with Enabled() or use the nil-safe methods", name, noun)
		return true
	})
	return nil, nil
}

// handleTypes is the set of trace types whose handles are nil when tracing
// is disabled: raw field access on any of them panics on the nil-safe path.
var handleTypes = map[string]bool{
	"Tracer":      true,
	"Counter":     true,
	"Gauge":       true,
	"LatencyHist": true,
	"Sampler":     true,
}

// traceHandle reports whether t is one of the trace handle types (or a
// pointer to one), for any package named/aliased trace (the root package
// re-exports them), returning the type name.
func traceHandle(t types.Type) (string, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if !handleTypes[obj.Name()] || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path == "trace" || strings.HasSuffix(path, "/trace") {
		return obj.Name(), true
	}
	return "", false
}

// isTracer reports whether t is specifically trace.Tracer or *trace.Tracer
// (the only type carrying the Enabled() guard method).
func isTracer(t types.Type) bool {
	name, ok := traceHandle(t)
	return ok && name == "Tracer"
}

// guardedByEnabled reports whether pos sits in the body of an enclosing if
// statement whose condition calls Enabled() on a tracer.
func guardedByEnabled(pass *analysis.Pass, stack []ast.Node, pos token.Pos) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if pos < ifStmt.Body.Pos() || pos > ifStmt.Body.End() {
			continue // in the condition or the else branch, not under the guard
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || callee.Sel.Name != "Enabled" {
				return true
			}
			if isTracer(pass.TypesInfo.TypeOf(callee.X)) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
