// Package trace stands in for the telemetry package: a nil *Tracer is the
// disabled state, methods are nil-safe, raw field access is not. The same
// contract covers the handle types (Gauge, Sampler, ...) a tracer returns.
package trace

type Tracer struct {
	MaxSpans int
}

func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.MaxSpans = n
}

func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return &Gauge{}
}

func (t *Tracer) StartSampler(interval int64) *Sampler {
	if t == nil {
		return nil
	}
	return &Sampler{}
}

type Gauge struct {
	V float64
}

func (g *Gauge) Set(v float64) {
	if g != nil {
		g.V = v
	}
}

func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.V
}

type Sampler struct {
	MaxSamples int
}

func (s *Sampler) SetMaxSamples(n int) {
	if s == nil {
		return
	}
	s.MaxSamples = n
}
