// Package trace stands in for the telemetry package: a nil *Tracer is the
// disabled state, methods are nil-safe, raw field access is not.
package trace

type Tracer struct {
	MaxSpans int
}

func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.MaxSpans = n
}
