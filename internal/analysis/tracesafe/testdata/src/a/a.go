// Package a exercises the tracesafe analyzer: outside package trace,
// tracer fields may only be touched under an Enabled() guard.
package a

import "npf/internal/trace"

func bad(tr *trace.Tracer) {
	tr.MaxSpans = 4      // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
	if tr.MaxSpans > 0 { // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
		return
	}
}

func badElse(tr *trace.Tracer) {
	if tr.Enabled() {
		return
	} else if true {
		tr.MaxSpans = 4 // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
	}
}

func guarded(tr *trace.Tracer) {
	if tr.Enabled() {
		tr.MaxSpans = 4
	}
	if tr != nil && tr.Enabled() {
		if tr.MaxSpans == 0 {
			tr.MaxSpans = 8
		}
	}
}

func viaMethod(tr *trace.Tracer) {
	tr.SetMaxSpans(4) // nil-safe wrapper: always fine
}

func annotated(tr *trace.Tracer) {
	tr.MaxSpans = 4 //npf:tracesafe — caller guarantees an enabled tracer
}

func badGauge(tr *trace.Tracer) {
	g := tr.Gauge("x")
	g.V = 3      // want `direct field access on \*trace\.Gauge panics when tracing is disabled`
	if g.V > 1 { // want `direct field access on \*trace\.Gauge panics when tracing is disabled`
		return
	}
}

func goodGauge(tr *trace.Tracer) {
	g := tr.Gauge("x")
	g.Set(3) // nil-safe method: always fine
	_ = g.Value()
	if tr.Enabled() {
		g.V = 3 // guarded: the tracer (and thus the handle) is non-nil
	}
}

func badSampler(tr *trace.Tracer) {
	s := tr.StartSampler(10)
	s.MaxSamples = 4      // want `direct field access on \*trace\.Sampler panics when tracing is disabled`
	if s.MaxSamples > 0 { // want `direct field access on \*trace\.Sampler panics when tracing is disabled`
		return
	}
}

func goodSampler(tr *trace.Tracer) {
	s := tr.StartSampler(10)
	s.SetMaxSamples(4) // nil-safe wrapper: always fine
	if tr.Enabled() {
		s.MaxSamples = 8
	}
}

func annotatedSampler(s *trace.Sampler) {
	s.MaxSamples = 4 //npf:tracesafe — caller guarantees an enabled tracer
}
