// Package a exercises the tracesafe analyzer: outside package trace,
// tracer fields may only be touched under an Enabled() guard.
package a

import "npf/internal/trace"

func bad(tr *trace.Tracer) {
	tr.MaxSpans = 4      // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
	if tr.MaxSpans > 0 { // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
		return
	}
}

func badElse(tr *trace.Tracer) {
	if tr.Enabled() {
		return
	} else if true {
		tr.MaxSpans = 4 // want `direct field access on \*trace\.Tracer panics when tracing is disabled`
	}
}

func guarded(tr *trace.Tracer) {
	if tr.Enabled() {
		tr.MaxSpans = 4
	}
	if tr != nil && tr.Enabled() {
		if tr.MaxSpans == 0 {
			tr.MaxSpans = 8
		}
	}
}

func viaMethod(tr *trace.Tracer) {
	tr.SetMaxSpans(4) // nil-safe wrapper: always fine
}

func annotated(tr *trace.Tracer) {
	tr.MaxSpans = 4 //npf:tracesafe — caller guarantees an enabled tracer
}
