package tracesafe_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/tracesafe"
)

func TestTracesafe(t *testing.T) {
	// The fake trace package is listed too: the analyzer must skip the
	// package that owns the representation.
	analysistest.Run(t, analysistest.TestData(), tracesafe.Analyzer,
		"a", "npf/internal/trace")
}
