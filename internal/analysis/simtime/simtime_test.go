package simtime_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), simtime.Analyzer,
		"npf/internal/nic", "npf/internal/bench")
}
