// Package simtime defines an analyzer that keeps wall-clock-shaped types
// out of simulation-layer APIs.
//
// The simulator's unit of time is sim.Time (virtual nanoseconds). A
// time.Duration or time.Time in a signature inside
// internal/{sim,core,nic,iommu,rc,tcp,fabric,mem} invites callers to feed
// host time into the simulation, so those signatures must use sim.Time.
// The deliberate conversion boundary (e.g. sim.Duration) is annotated
// //npf:realtime.
package simtime

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"npf/internal/analysis/directive"
)

const Doc = `forbid time.Duration/time.Time in sim-layer signatures

Packages internal/{sim,core,nic,iommu,rc,tcp,fabric,mem,kv} express time as
sim.Time (virtual nanoseconds). Signatures carrying time.Duration or
time.Time invite wall-clock values into the simulation; convert at the
boundary instead. Annotate intentional converters with //npf:realtime.`

var Analyzer = &analysis.Analyzer{
	Name:     "simtime",
	Doc:      Doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// simLayer matches the import paths whose APIs must use sim.Time.
var simLayer = regexp.MustCompile(`(^|/)internal/(sim|core|nic|iommu|rc|tcp|fabric|mem|kv)(/|$)`)

func run(pass *analysis.Pass) (interface{}, error) {
	if !simLayer.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if dirs.Allows(pass.Fset, "realtime", decl.Pos()) || docAllows(decl) {
			return
		}
		check := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				t := pass.TypesInfo.TypeOf(field.Type)
				if name := wallClockType(t); name != "" {
					pass.Reportf(field.Type.Pos(), "%s in the signature of %s: sim-layer APIs take sim.Time, convert wall-clock values at the boundary (annotate //npf:realtime if this is the boundary)",
						name, decl.Name.Name)
				}
			}
		}
		check(decl.Type.Params)
		check(decl.Type.Results)
	})
	return nil, nil
}

// docAllows reports whether the decl's doc comment carries //npf:realtime.
func docAllows(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == directive.Prefix+"realtime" {
			return true
		}
	}
	return false
}

// wallClockType reports the first time.Duration/time.Time reachable inside
// t ("" if none), looking through pointers, containers, and struct/func
// shapes.
func wallClockType(t types.Type) string {
	seen := make(map[types.Type]bool)
	var visit func(t types.Type) string
	visit = func(t types.Type) string {
		if t == nil || seen[t] {
			return ""
		}
		seen[t] = true
		t = types.Unalias(t)
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				if obj.Name() == "Duration" || obj.Name() == "Time" {
					return "time." + obj.Name()
				}
			}
			return "" // other named types are their own API decision
		}
		switch u := t.(type) {
		case *types.Pointer:
			return visit(u.Elem())
		case *types.Slice:
			return visit(u.Elem())
		case *types.Array:
			return visit(u.Elem())
		case *types.Chan:
			return visit(u.Elem())
		case *types.Map:
			if s := visit(u.Key()); s != "" {
				return s
			}
			return visit(u.Elem())
		case *types.Signature:
			for i := 0; i < u.Params().Len(); i++ {
				if s := visit(u.Params().At(i).Type()); s != "" {
					return s
				}
			}
			for i := 0; i < u.Results().Len(); i++ {
				if s := visit(u.Results().At(i).Type()); s != "" {
					return s
				}
			}
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if s := visit(u.Field(i).Type()); s != "" {
					return s
				}
			}
		}
		return ""
	}
	return visit(t)
}
