// Package bench is outside the sim-layer set, so wall-clock-shaped
// signatures are its own business.
package bench

import "time"

func Elapsed(d time.Duration) float64 { return d.Seconds() }
