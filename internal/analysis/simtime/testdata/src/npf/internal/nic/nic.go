// Package nic stands in for a sim-layer package: its APIs must express
// time as sim.Time (virtual nanoseconds), never wall-clock types.
package nic

import "time"

type Time int64

func Bad(timeout time.Duration) {} // want `time\.Duration in the signature of Bad`

func BadResult() time.Time { // want `time\.Time in the signature of BadResult`
	return time.Time{}
}

func BadNested(cfg struct{ Poll []time.Duration }) {} // want `time\.Duration in the signature of BadNested`

func Good(timeout Time) {}

// Duration is this package's sanctioned conversion boundary.
//
//npf:realtime
func Duration(d time.Duration) Time { return Time(d) }

//npf:realtime
func Eta() time.Time { return time.Time{} }
