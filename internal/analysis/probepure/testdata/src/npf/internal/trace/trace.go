// Package trace is a stand-in for the real tracer: probepure matches
// registrations by method name (Probe), receiver type (Tracer), and this
// exact import path, so the fixture must live at npf/internal/trace.
package trace

// Tracer is a stand-in sampler host.
type Tracer struct{ probes map[string]func() float64 }

// Probe registers a sampler probe.
func (t *Tracer) Probe(name string, fn func() float64) {
	if t.probes == nil {
		t.probes = make(map[string]func() float64)
	}
	t.probes[name] = fn
}
