// Package m provides cross-package probe targets: Count's Mutates fact and
// Read's proven-clean verdict both travel to the registering package
// through the serialized fact store.
package m

var hits int

// Count mutates package state: registering it as a probe is a finding.
func Count() float64 {
	hits++
	return float64(hits)
}

// Read is read-only.
func Read() float64 { return float64(hits) }
