// Package a registers sampler probes of every shape: pure method values,
// pure and mutating literals, cross-package targets resolved through
// facts, dynamic values, and a reviewed //npf:probepure escape.
package a

import (
	"m"
	"npf/internal/trace"
)

type dev struct {
	n   int
	lat map[string]int
}

// len is a pure method value target.
func (d *dev) len() float64 { return float64(d.n) }

// bump mutates the receiver: probes must not reach it.
func (d *dev) bump() float64 {
	d.n++
	return float64(d.n)
}

// Register wires every fixture probe.
func Register(tr *trace.Tracer) {
	d := &dev{lat: map[string]int{}}

	tr.Probe("ok.len", d.len)
	tr.Probe("ok.lit", func() float64 { return float64(d.n) })
	tr.Probe("ok.cross", m.Read)
	tr.Probe("ok.sum", func() float64 {
		total := 0.0
		for _, v := range d.lat {
			total += float64(v)
		}
		return total
	})
	//npf:probepure — reviewed: fixture escape for an intentional mutation
	tr.Probe("ok.reviewed", d.bump)

	tr.Probe("bad.method", d.bump) // want `sampler probe "bad\.method" is not read-only: dev\.bump → writes field n through a pointer`
	tr.Probe("bad.lit", func() float64 {
		d.n++ // want `sampler probe "bad\.lit" is not read-only: writes field n through a pointer`
		return float64(d.n)
	})
	tr.Probe("bad.chain", func() float64 {
		return d.bump() // want `sampler probe "bad\.chain" is not read-only: dev\.bump → writes field n through a pointer`
	})
	tr.Probe("bad.cross", m.Count)                                 // want `sampler probe "bad\.cross" is not read-only: calls m\.Count, which mutates state: writes package variable hits`
	tr.Probe("bad.map", func() float64 { d.lat["x"]++; return 0 }) // want `sampler probe "bad\.map" is not read-only: writes a map element`
	var f func() float64
	tr.Probe("bad.dyn", f) // want `sampler probe "bad\.dyn" is not read-only: dynamic probe value \(cannot prove read-only\)`
}
