// Package probepure defines the sampler-probe purity analyzer. Probes
// registered with Tracer.Probe are called by the sim-time sampler at every
// tick, in name order, and their values are summed commutatively into the
// series store (PR 5); the whole scheme is only deterministic if a probe
// observes state without changing it — no field writes, no map mutation,
// no randomness draws, no goroutines. This analyzer proves probes
// read-only with fact-propagated mutation summaries: every function gets a
// bottom-up Mutates/clean verdict, serialized across packages, and each
// registration site checks the probe body (or referenced function) against
// them. Reviewed exceptions are annotated //npf:probepure on the
// registration line, with a justification comment.
package probepure

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"npf/internal/analysis/directive"
	"npf/internal/analysis/summary"
)

const Doc = `require sampler probes registered with Tracer.Probe to be read-only

The sampler calls probes at every tick and sums their values; a probe that
mutates state (fields through pointers, maps, channels, RNG draws) makes
sampling perturb the run — the exact bug class the zero-alloc disabled
path exists to prevent. Mutation summaries propagate through facts, so a
probe calling a mutating helper three packages away is still caught.
Annotate reviewed registrations //npf:probepure.`

var Analyzer = &analysis.Analyzer{
	Name:      "probepure",
	Doc:       Doc,
	FactTypes: []analysis.Fact{(*Mutates)(nil), (*Analyzed)(nil)},
	Run:       run,
}

// Mutates marks a function that writes non-local state (or cannot be
// proven not to); What describes the first offending construct, as a call
// chain for transitive cases.
type Mutates struct {
	What string
}

// AFact marks Mutates as a serializable analysis fact.
func (*Mutates) AFact() {}

// Analyzed is a package fact: the package has mutation summaries, so a
// function there without a Mutates fact is proven read-only.
type Analyzed struct{}

// AFact marks Analyzed as a serializable analysis fact.
func (*Analyzed) AFact() {}

// allowedPkgs are unanalyzed packages whose functions are known pure.
var allowedPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
}

type finding struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	g := summary.Build(info, pass.Files, false)

	muts := make([][]finding, len(g.Decls))
	for i, d := range g.Decls {
		// Literal bodies are skipped here, mirroring the edge pass:
		// invoking a literal is a dynamic call, which the verdict already
		// treats as unprovable.
		muts[i] = scanMutations(info, d.Decl.Body, d.Decl.Pos(), d.Decl.End(), false)
	}
	external := func(e summary.Edge) string { return externalWhy(pass, e) }
	reasons := g.Fixpoint(func(i int) string {
		if len(muts[i]) == 0 {
			return ""
		}
		return muts[i][0].what
	}, external, nil)

	for i, d := range g.Decls {
		if reasons[i] != "" {
			pass.ExportObjectFact(d.Fn, &Mutates{What: reasons[i]})
		}
	}
	pass.ExportPackageFact(&Analyzed{})

	// Check every Tracer.Probe registration in this package.
	dirs := directive.ForFiles(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := summary.StaticCallee(info, call)
			if !isProbeRegistration(fn) || len(call.Args) != 2 {
				return true
			}
			if dirs.Allows(pass.Fset, "probepure", call.Lparen) {
				return true
			}
			pos, why := probeWhy(pass, g, reasons, call.Args[1])
			if why != "" {
				pass.Reportf(pos, "sampler probe %s is not read-only: %s — probes run every tick and must observe without mutating (annotate //npf:probepure if reviewed)",
					probeName(call.Args[0]), why)
			}
			return true
		})
	}
	return nil, nil
}

// isProbeRegistration matches the method (*trace.Tracer).Probe.
func isProbeRegistration(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Probe" || fn.Pkg() == nil || fn.Pkg().Path() != "npf/internal/trace" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tracer"
}

// probeName renders the registration's name argument for diagnostics.
func probeName(arg ast.Expr) string {
	if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		return lit.Value
	}
	return "(dynamic name)"
}

// probeWhy evaluates the purity of a probe argument: a function literal is
// scanned in place (mutations reported at their own position), a named
// function or method value is resolved against the local summaries or the
// imported facts. "" means proven read-only.
func probeWhy(pass *analysis.Pass, g *summary.Graph, reasons []string, arg ast.Expr) (token.Pos, string) {
	info := pass.TypesInfo
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		// Locality is judged against the literal itself: writing a
		// variable captured from the enclosing function is a mutation of
		// shared state from the sampler's point of view.
		if ms := scanMutations(info, a.Body, a.Pos(), a.End(), true); len(ms) > 0 {
			return ms[0].pos, ms[0].what
		}
		for _, e := range summary.CallEdges(info, a.Body, true) {
			if e.Fn != nil {
				if j, ok := g.Index[e.Fn]; ok {
					if reasons[j] != "" {
						return e.Pos, summary.Chain(summary.FuncLabel(e.Fn), reasons[j])
					}
					continue
				}
			}
			if why := externalWhy(pass, e); why != "" {
				return e.Pos, why
			}
		}
		return arg.Pos(), ""
	default:
		fn := referencedFunc(info, arg)
		if fn == nil {
			return arg.Pos(), "dynamic probe value (cannot prove read-only)"
		}
		if j, ok := g.Index[fn]; ok {
			if reasons[j] != "" {
				return arg.Pos(), summary.Chain(summary.FuncLabel(fn), reasons[j])
			}
			return arg.Pos(), ""
		}
		return arg.Pos(), externalWhy(pass, summary.Edge{Pos: arg.Pos(), Fn: fn})
	}
}

// referencedFunc resolves a func/method value expression to its target.
func referencedFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// externalWhy explains why a call leaving the package (or with no static
// callee) cannot be proven read-only; "" admits it.
func externalWhy(pass *analysis.Pass, e summary.Edge) string {
	if e.Fn == nil {
		return "dynamic call (cannot prove read-only)"
	}
	fn := e.Fn
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return ""
	}
	var m Mutates
	if pass.ImportObjectFact(fn, &m) {
		return "calls " + crossLabel(fn) + ", which mutates state: " + m.What
	}
	path := fn.Pkg().Path()
	if allowedPkgs[path] {
		return ""
	}
	var an Analyzed
	if pass.ImportPackageFact(fn.Pkg(), &an) {
		return "" // analyzed and carries no Mutates fact: proven read-only
	}
	return "calls " + crossLabel(fn) + " (package " + path + " has no purity summaries)"
}

func crossLabel(fn *types.Func) string {
	label := summary.FuncLabel(fn)
	if fn.Pkg() != nil {
		label = fn.Pkg().Name() + "." + label
	}
	return label
}

// scanMutations finds writes to state outside the scope [lo, hi] under
// node. Unless deep, function-literal bodies are skipped (defining a
// literal mutates nothing; invoking it is a dynamic call the edge pass
// already rejects).
func scanMutations(info *types.Info, node ast.Node, lo, hi token.Pos, deep bool) []finding {
	var out []finding
	add := func(pos token.Pos, what string) {
		if what != "" {
			out = append(out, finding{pos: pos, what: what})
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != node && !deep {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				add(lhs.Pos(), classifyWrite(info, lhs, lo, hi))
			}
		case *ast.IncDecStmt:
			add(n.Pos(), classifyWrite(info, n.X, lo, hi))
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					add(n.Key.Pos(), classifyWrite(info, n.Key, lo, hi))
				}
				if n.Value != nil {
					add(n.Value.Pos(), classifyWrite(info, n.Value, lo, hi))
				}
			}
		case *ast.SendStmt:
			add(n.Pos(), "sends on a channel")
		case *ast.GoStmt:
			add(n.Pos(), "starts a goroutine")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "delete":
						add(n.Pos(), "deletes from a map")
					case "copy":
						add(n.Pos(), "copy writes through its destination")
					}
				}
			}
		}
		return true
	})
	return out
}

// classifyWrite reports why writing lhs touches state shared beyond the
// scope [lo, hi]; "" means the write is provably local (a variable
// declared in scope, or a field of a by-value copy).
func classifyWrite(info *types.Info, lhs ast.Expr, lo, hi token.Pos) string {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return "" // blank identifier
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "writes package variable " + v.Name()
			}
			if v.Pos() < lo || v.Pos() > hi {
				return "writes captured variable " + v.Name()
			}
			return ""
		case *ast.SelectorExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return "writes field " + e.Sel.Name + " through a pointer"
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			t := info.TypeOf(e.X)
			if t == nil {
				return "writes to unanalyzed expression"
			}
			switch t.Underlying().(type) {
			case *types.Map:
				return "writes a map element"
			case *types.Slice:
				return "writes a slice element (shared backing)"
			case *types.Pointer:
				return "writes an array element through a pointer"
			default:
				lhs = e.X // array value: locality decided by its base
			}
		case *ast.StarExpr:
			return "writes through a pointer"
		default:
			return "writes to unanalyzed expression"
		}
	}
}
