package probepure_test

import (
	"testing"

	"npf/internal/analysis/analysistest"
	"npf/internal/analysis/probepure"
)

// TestProbepure covers probe shapes (method values, literals, chains,
// cross-package targets via facts, dynamic values) and the //npf:probepure
// escape, against a Tracer stand-in at the matched import path.
func TestProbepure(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), probepure.Analyzer, "a")
}
