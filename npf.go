// Package npf is a simulation library reproducing "Page Fault Support for
// Network Controllers" (Lesokhin et al., ASPLOS 2017) — the on-demand
// paging (ODP) design that lets NICs take DMA page faults instead of
// forcing IOusers to pin memory.
//
// The library bundles a deterministic discrete-event simulator with every
// layer the paper touches:
//
//   - host virtual memory (frames, demand paging, swap, cgroup limits,
//     MMU notifiers, pinning) — npf/internal/mem
//   - an on-NIC IOMMU with faultable page tables — npf/internal/iommu
//   - a network fabric (line rates, propagation, loss, pause) —
//     npf/internal/fabric
//   - an Ethernet NIC implementing the paper's Figure 6 backup-ring
//     hardware, plus drop and pinned policies — npf/internal/nic
//   - an InfiniBand HCA with RC/UD transports, RNR-NACK-based receive
//     fault handling, and RDMA read rewind — npf/internal/rc
//   - a TCP stack (slow start, RTO backoff, fast retransmit) that exhibits
//     the paper's cold-ring collapse — npf/internal/tcp
//   - the IOprovider driver: the paper's contribution (Figure 2 fault and
//     invalidation flows, backup-ring resolver, batching/prefetch) and its
//     baselines (static / fine-grained / pin-down-cache pinning) —
//     npf/internal/core
//   - the evaluation workloads and an experiment harness regenerating
//     every table and figure — npf/internal/apps, npf/internal/bench
//
// This root package re-exports the pieces a user composes, and offers a
// Cluster convenience wrapper built from functional options:
//
//	cluster := npf.NewCluster(npf.WithSeed(42), npf.WithFabric(npf.EthernetFabric()))
//	host := cluster.NewHost("server", npf.WithRAM(8<<30))
//	ch := host.OpenChannel(as, npf.WithRingSize(256), npf.WithPolicy(npf.PolicyBackup))
//
// # Fault injection
//
// The chaos re-exports (ChaosPlan, FirmwareStall, LossBurst, GilbertElliott,
// LinkFlap, MemoryPressure, InvalidationChaos, ResolverSlowdown) build
// deterministic fault-injection plans — seeded-RNG scheduling, byte-identical
// replay, every injected fault traced. Hand a plan to NewCluster or
// OpenChannel via WithChaos:
//
//	plan := npf.NewChaosPlan(
//		npf.LossBurst{At: 2 * npf.Millisecond, Duration: 3 * npf.Millisecond, Prob: 0.3},
//		npf.FirmwareStall{At: 1 * npf.Millisecond, Duration: 3 * npf.Millisecond, Mult: 3},
//	)
//	cluster := npf.NewCluster(npf.WithSeed(42), npf.WithChaos(plan))
//
// Canned adversarial scenarios with pass/fail invariants live behind
// ChaosScenarios / RunChaosScenario (also `npfbench -chaos NAME`).
//
// See examples/ for runnable programs and cmd/npfbench for the paper's
// evaluation.
package npf

import (
	"npf/internal/chaos"
	"npf/internal/core"
	"npf/internal/fabric"
	"npf/internal/iommu"
	"npf/internal/kv"
	"npf/internal/mem"
	"npf/internal/nic"
	"npf/internal/rc"
	"npf/internal/sim"
	"npf/internal/tcp"
	"npf/internal/topo"
	"npf/internal/trace"
	"npf/internal/workload"
)

// Simulation engine.
type (
	// Engine is the discrete-event simulator all components share.
	Engine = sim.Engine
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Histogram collects latency samples.
	Histogram = sim.Histogram
	// EngineGroup is a set of per-partition engines advancing together
	// under conservative-lookahead synchronization (WithEngines).
	EngineGroup = sim.Group
)

// Re-exported time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a deterministic engine seeded with seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// Memory subsystem.
type (
	// Machine is one host's memory substrate.
	Machine = mem.Machine
	// AddressSpace is one IOuser's demand-paged virtual address space.
	AddressSpace = mem.AddressSpace
	// MemGroup is a cgroup-style accounting domain with a byte limit.
	MemGroup = mem.Group
	// PageCache is an OS page cache over a simulated disk.
	PageCache = mem.PageCache
	// VAddr is a virtual address; PageNum a virtual page number.
	VAddr   = mem.VAddr
	PageNum = mem.PageNum
)

// PageSize is the simulated page size (4 KiB).
const PageSize = mem.PageSize

// NewMachine creates a host memory substrate with ramBytes of physical
// memory.
func NewMachine(eng *Engine, ramBytes int64) *Machine { return mem.NewMachine(eng, ramBytes) }

// NewMemGroup creates a memory-accounting group (cgroup) with a byte limit.
func NewMemGroup(name string, limit int64) *MemGroup { return mem.NewGroup(name, limit) }

// Fabric.
type (
	// Network is the fabric joining hosts.
	Network = fabric.Network
	// FabricConfig parameterises it.
	FabricConfig = fabric.Config
	// NodeID identifies an attachment point.
	NodeID = fabric.NodeID
	// FlowID steers packets to channels.
	FlowID = fabric.FlowID
)

// EthernetFabric returns the paper's 12 Gb/s prototype Ethernet config.
func EthernetFabric() FabricConfig { return fabric.DefaultEthernet() }

// InfiniBandFabric returns the 56 Gb/s lossless Connect-IB config.
func InfiniBandFabric() FabricConfig { return fabric.DefaultInfiniBand() }

// NewNetwork creates a fabric on eng.
func NewNetwork(eng *Engine, cfg FabricConfig) *Network { return fabric.New(eng, cfg) }

// Ethernet NIC.
type (
	// Device is an Ethernet NIC with NPF support.
	Device = nic.Device
	// Channel is a direct I/O channel (the paper's IOchannel).
	Channel = nic.Channel
	// NICConfig holds device latencies.
	NICConfig = nic.Config
	// FaultPolicy selects pinned / drop / backup-ring receive behaviour.
	FaultPolicy = nic.FaultPolicy
)

// Receive fault policies (Figure 4/10 configurations).
const (
	PolicyPinned = nic.PolicyPinned
	PolicyDrop   = nic.PolicyDrop
	PolicyBackup = nic.PolicyBackup
)

// NewDevice creates an Ethernet NIC attached to net.
func NewDevice(eng *Engine, net *Network, cfg NICConfig) *Device { return nic.NewDevice(eng, net, cfg) }

// DefaultNICConfig returns latencies calibrated to the paper's Figure 3.
func DefaultNICConfig() NICConfig { return nic.DefaultConfig() }

// InfiniBand.
type (
	// HCA is an InfiniBand adapter with ODP firmware support.
	HCA = rc.HCA
	// QP is a reliable-connection queue pair.
	QP = rc.QP
	// HCAConfig holds adapter parameters.
	HCAConfig = rc.Config
	// SendWQE / RecvWQE / ReadWQE are work requests.
	SendWQE = rc.SendWQE
	RecvWQE = rc.RecvWQE
	ReadWQE = rc.ReadWQE
	// RecvCompletion reports an incoming message.
	RecvCompletion = rc.RecvCompletion
)

// NewHCA creates an InfiniBand adapter attached to net.
func NewHCA(eng *Engine, net *Network, cfg HCAConfig) *HCA { return rc.NewHCA(eng, net, cfg) }

// DefaultHCAConfig returns Connect-IB-calibrated parameters.
func DefaultHCAConfig() HCAConfig { return rc.DefaultConfig() }

// DefaultRoCEConfig returns parameters for RDMA over Converged Ethernet
// (§4 "Applicability"): the same NPF machinery over a lossy fabric, with a
// tighter retransmission timeout backing the out-of-sequence NAKs.
func DefaultRoCEConfig() HCAConfig { return rc.DefaultRoCEConfig() }

// ConnectQPs wires two queue pairs into a reliable connection.
func ConnectQPs(a, b *QP) { rc.Connect(a, b) }

// TCP.
type (
	// Stack is a TCP endpoint over a NIC channel.
	Stack = tcp.Stack
	// Conn is one TCP connection.
	Conn = tcp.Conn
	// TCPConfig holds stack parameters.
	TCPConfig = tcp.Config
)

// NewStack builds a TCP stack over ch.
func NewStack(ch *Channel, cfg TCPConfig) *Stack { return tcp.NewStack(ch, cfg) }

// DefaultTCPConfig returns Linux-3.x-like TCP parameters.
func DefaultTCPConfig() TCPConfig { return tcp.DefaultConfig() }

// The driver — the paper's contribution.
type (
	// Driver is the IOprovider's NPF driver (ODP).
	Driver = core.Driver
	// DriverConfig holds driver cost parameters and policy knobs.
	DriverConfig = core.Config
	// PinDownCache is the coarse-grained pinning baseline.
	PinDownCache = core.PinDownCache
	// IOMMUDomain is a device translation domain.
	IOMMUDomain = iommu.Domain
	// GuestTable is the IOuser-managed first level of a 2D IOMMU
	// translation (§2.4): strict protection orthogonal to ODP.
	GuestTable = iommu.GuestTable
)

// NewGuestTable returns an empty (all-blocking) guest table; install it
// with Domain.SetGuestTable and grant ranges with Allow.
func NewGuestTable() *GuestTable { return iommu.NewGuestTable() }

// NewDriver creates an NPF driver for one host.
func NewDriver(eng *Engine, cfg DriverConfig) *Driver { return core.NewDriver(eng, cfg) }

// DefaultDriverConfig returns Figure-3-calibrated driver costs.
func DefaultDriverConfig() DriverConfig { return core.DefaultConfig() }

// StaticPinAll pins an entire address space (the SRIOV/DPDK production
// baseline). It fails when physical memory cannot hold it.
func StaticPinAll(as *AddressSpace, dom *IOMMUDomain) (Time, error) {
	return core.StaticPinAll(as, dom)
}

// NewPinDownCache creates a bounded pin-down cache over (as, dom).
func NewPinDownCache(as *AddressSpace, dom *IOMMUDomain, capacity int64) *PinDownCache {
	return core.NewPinDownCache(as, dom, capacity)
}

// Telemetry.
type (
	// Tracer records spans, counters, and latency histograms on the
	// engine's virtual clock. A nil *Tracer is inert, so call sites never
	// guard.
	Tracer = trace.Tracer
	// Span is one recorded interval; SpanID names it; Arg is an attached
	// key/value.
	Span   = trace.Span
	SpanID = trace.SpanID
	Arg    = trace.Arg
	// Sampler snapshots all registered metrics every interval of virtual
	// time (see WithSampling); Series is its exportable result, with CSV,
	// JSON, OpenMetrics, and sparkline renderers.
	Sampler = trace.Sampler
	Series  = trace.Series
)

// NewTracer creates a tracer on eng. Components accept it via their
// SetTracer methods; the Cluster facade wires it everywhere when built
// WithTracing (or WithChaos, which implies tracing).
func NewTracer(eng *Engine) *Tracer { return trace.New(eng) }

// Distributed key-value service (internal/kv).
type (
	// KVService is a sharded, replicated key-value store deployed across
	// simulated hosts on the cluster fabric; deploy one with WithKV (or
	// NewKVService for simulations assembled without the facade).
	KVService = kv.Service
	// KVConfig sizes a deployment; a zero value is a small but fully
	// functional one.
	KVConfig = kv.Config
	// KVHost is one machine of the deployment (servers first, then
	// clients).
	KVHost = kv.HostNode
	// KVWorkload is a load generator with per-op latency accounting;
	// WorkloadConfig shapes it (Zipf skew, open/closed loop, tenant).
	KVWorkload = kv.Workload
	// KVRegPolicy selects how server memory is registered with the NICs;
	// KVTransport selects the wire protocol.
	KVRegPolicy = kv.RegPolicy
	KVTransport = kv.Transport
)

// KVWorkloadConfig shapes a KV workload.
//
// Deprecated: use WorkloadConfig. The KV service and the scale-out sweep
// share one workload configuration type (internal/workload.Config); this
// alias survives for source compatibility and npflint flags it.
type KVWorkloadConfig = kv.WorkloadConfig

// KV registration policies (the paper's Table 3 spectrum applied to a
// service) and transports.
const (
	KVRegODP     = kv.RegODP
	KVRegPinDown = kv.RegPinDown
	KVRegPinned  = kv.RegPinned

	KVTransportTCP = kv.TransportTCP
	KVTransportRC  = kv.TransportRC
)

// NewKVService deploys a KV service on an explicitly assembled engine and
// fabric; tr may be nil. Most users deploy through NewCluster(WithKV(cfg)).
func NewKVService(eng *Engine, net *Network, tr *Tracer, cfg KVConfig) *KVService {
	return kv.New(eng, net, tr, cfg)
}

// Shared workload shaping (internal/workload) and the scale-out sweep
// (internal/topo).
type (
	// WorkloadConfig sizes one tenant's load generator: clients, target
	// ops, get ratio, Zipf key skew, open/closed loop, arrival rate and
	// curve. One type serves both WithKV tenants (Service.NewWorkload) and
	// WithSwarm sweep tenants.
	WorkloadConfig = workload.Config
	// WorkloadCurve shapes an open-loop arrival rate over virtual time:
	// diurnal swing plus an optional flash crowd.
	WorkloadCurve = workload.Curve

	// ClusterSweep is a scale-out experiment: O(10^3) hosts and
	// O(10^5..10^6) logical clients on one deterministic simulation, built
	// by WithSwarm (or NewSweep for explicitly assembled fabrics).
	ClusterSweep = topo.Sweep
	// SweepConfig sizes the fleet: servers, swarm hosts, transport, and
	// the tenants with their registration policies.
	SweepConfig = topo.SweepConfig
	// SweepTenant is one tenant of a sweep: its workload shape, memory
	// budget, and registration policy.
	SweepTenant = topo.TenantSpec
	// SweepResult is the deterministic aggregate (per-tenant tails,
	// fleet-wide NPF activity, bytes-per-host, fingerprint).
	SweepResult = topo.Result
	// SweepTransport selects the sweep's wire protocol; SweepRegPolicy
	// the per-tenant server memory registration.
	SweepTransport = topo.Transport
	SweepRegPolicy = topo.RegPolicy
	// Topology maps hosts to racks and racks to PDES partitions.
	Topology = topo.Topology
)

// Sweep transports and registration policies (the paper's Table 3
// spectrum applied to a fleet).
const (
	SweepTransportEth = topo.TransportEth
	SweepTransportUD  = topo.TransportUD

	SweepRegODP     = topo.RegODP
	SweepRegPinDown = topo.RegPinDown
	SweepRegPinned  = topo.RegPinned
)

// NewSweep builds a scale-out sweep on an explicitly assembled engine and
// fabric (most users deploy through NewCluster(WithSwarm(cfg))). On a PDES
// group's fabric, eng must be partition 0's engine; hosts are placed on
// partitions rack-by-rack via Topology, independent of the thread budget.
func NewSweep(eng *Engine, net *Network, cfg SweepConfig) (*ClusterSweep, error) {
	return topo.New(eng, net, cfg)
}

// Fault injection (internal/chaos).
type (
	// ChaosPlan is an ordered list of faults to inject; ChaosFault is one
	// configured perturbation.
	ChaosPlan  = chaos.Plan
	ChaosFault = chaos.Fault
	// ChaosTargets names the stack objects a plan may perturb;
	// ChaosInjector is an armed plan. Most users never touch either —
	// WithChaos arms plans against the cluster or channel automatically.
	ChaosTargets  = chaos.Targets
	ChaosInjector = chaos.Injector

	// The fault types a plan can carry.
	FirmwareStall     = chaos.FirmwareStall
	LossBurst         = chaos.LossBurst
	GilbertElliott    = chaos.GilbertElliott
	GEParams          = chaos.GEParams
	LinkFlap          = chaos.LinkFlap
	MemoryPressure    = chaos.MemoryPressure
	InvalidationChaos = chaos.InvalidationChaos
	ResolverSlowdown  = chaos.ResolverSlowdown
	ChaosCallback     = chaos.Callback

	// ChaosScenario is a canned adversarial run with pass/fail invariants;
	// ChaosReport is its outcome.
	ChaosScenario = chaos.Scenario
	ChaosReport   = chaos.Report
)

// NewChaosPlan builds a fault-injection plan; pass it to WithChaos.
func NewChaosPlan(faults ...ChaosFault) *ChaosPlan { return chaos.NewPlan(faults...) }

// ArmChaos binds a plan to explicit targets, for simulations assembled
// without the Cluster facade. Arming is deterministic: one RNG split per
// fault, in plan order.
func ArmChaos(p *ChaosPlan, t ChaosTargets) *ChaosInjector { return chaos.Arm(p, t) }

// ChaosScenarios lists the canned adversarial scenarios.
func ChaosScenarios() []ChaosScenario { return chaos.Scenarios() }

// RunChaosScenario runs one scenario by name with the given seed and
// returns its report (also reachable as `npfbench -chaos NAME`).
func RunChaosScenario(name string, seed int64) (*ChaosReport, error) {
	return chaos.RunScenario(name, seed)
}
