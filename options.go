package npf

// ClusterOption configures NewCluster.
type ClusterOption interface{ applyCluster(*clusterConfig) }

// HostOption configures Cluster.NewHost.
type HostOption interface{ applyHost(*hostConfig) }

// ChannelOption configures Host.OpenChannel.
type ChannelOption interface{ applyChannel(*channelConfig) }

type clusterConfig struct {
	seed        int64
	engines     int
	fabric      FabricConfig
	trace       bool
	sampleEvery Time
	plan        *ChaosPlan
	kv          *KVConfig
	swarm       *SweepConfig
}

type hostConfig struct {
	ram     int64
	driver  DriverConfig
	part    int  // -1 = round-robin across partitions
	partSet bool // WithPartition was given explicitly (validate it)
}

type channelConfig struct {
	name     string
	ringSize int
	policy   FaultPolicy
	plan     *ChaosPlan
}

type clusterOption func(*clusterConfig)

func (f clusterOption) applyCluster(c *clusterConfig) { f(c) }

type hostOption func(*hostConfig)

func (f hostOption) applyHost(c *hostConfig) { f(c) }

type channelOption func(*channelConfig)

func (f channelOption) applyChannel(c *channelConfig) { f(c) }

// WithSeed sets the cluster's deterministic RNG seed (default 1). Two
// clusters built with the same seed and workload replay byte-identically.
func WithSeed(seed int64) ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.seed = seed })
}

// WithEngines shards the cluster across n per-partition engines running
// under a conservative-lookahead PDES group (the group's lookahead is the
// fabric's propagation latency). Hosts are placed round-robin across
// partitions unless pinned with WithPartition; cross-partition packets ride
// the group's timestamped mailboxes, so results — trace digests, sampler
// series, final clocks — are byte-identical to any other engine/thread
// count for the same partition layout. n also sets the group's worker
// thread budget (Cluster.Group.SetThreads adjusts it). n <= 1 keeps the
// classic single sequential engine.
//
// With WithKV, the service splits server tier (partition 0) from client
// tier (partition 1). A WithChaos plan is armed on partition 0, so only
// partition-0 hosts and the KV server tier join its target set.
func WithEngines(n int) ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.engines = n })
}

// WithFabric selects the fabric configuration (default EthernetFabric()).
func WithFabric(cfg FabricConfig) ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.fabric = cfg })
}

// WithTracing attaches a Tracer to the cluster's engine and wires it
// through every host built afterwards (drivers, machines, devices, HCAs).
// The tracer is reachable as Cluster.Tracer.
func WithTracing() ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.trace = true })
}

// WithSampling attaches a time-series Sampler ticking every `every` of
// virtual time, snapshotting all registered counters and gauges (and the
// per-subsystem probes every host registers) into deterministic series.
// Sampling implies tracing; the sampler is reachable as Cluster.Sampler.
func WithSampling(every Time) ClusterOption {
	return clusterOption(func(c *clusterConfig) {
		c.trace = true
		c.sampleEvery = every
	})
}

// WithKV deploys a sharded, replicated key-value service across the
// cluster's fabric: cfg.ServerHosts machines of shard replicas plus
// cfg.ClientHosts machines for workload generators, all built on the
// cluster's engine and fabric. The service is reachable as Cluster.KV;
// start it (or a workload, which starts it implicitly) before Run. When the
// cluster also carries a WithChaos plan, every KV host's driver, device,
// cgroup, and address space joins the plan's target set, so cluster-level
// faults (MemoryPressure, InvalidationChaos, LinkFlap, ...) land on the
// service. A zero KVConfig is a small but fully functional deployment; the
// fabric transport follows cfg.Transport, so pair KVTransportRC with
// WithFabric(InfiniBandFabric()).
func WithKV(cfg KVConfig) ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.kv = &cfg })
}

// WithSwarm deploys a scale-out sweep on the cluster's fabric: cfg.Servers
// paper-stack server machines and cfg.SwarmHosts lightweight swarm hosts
// multiplexing the tenants' logical clients (O(10^5..10^6) on one
// simulation), with per-tenant memory cgroups and registration policies so
// pinned / pin-down-cache / ODP show up as fleet-wide tail latency. The
// sweep is reachable as Cluster.Swarm; Run starts it automatically and
// Swarm.Result() aggregates afterwards. Workload shaping uses the same
// WorkloadConfig as WithKV tenants. Pair TransportUD with
// WithFabric(InfiniBandFabric()).
//
// Determinism: for byte-identical results across machine sizes keep
// WithEngines(n) fixed (it sets the partition layout) and vary only
// Cluster.Group.SetThreads — or use the bench layer's RunScaleout, which
// fixes the partition count for you. A misconfigured sweep panics at
// NewCluster with the configuration error.
func WithSwarm(cfg SweepConfig) ClusterOption {
	return clusterOption(func(c *clusterConfig) { c.swarm = &cfg })
}

// WithRAM sets the host's physical memory in bytes (default 8 GiB).
func WithRAM(bytes int64) HostOption {
	return hostOption(func(c *hostConfig) { c.ram = bytes })
}

// WithPartition pins the host to PDES partition p of a WithEngines(n)
// cluster (default: round-robin placement). Components the host builds —
// machine, driver, NIC, HCA — live on that partition's engine; schedule
// work touching them there (Cluster.EngineFor). p must name a real
// partition: out-of-range pins are a configuration error reported by
// TryNewHost (NewHost panics on it) instead of a late index panic once
// the run first touches the host. On single-engine clusters a
// non-negative p is ignored as documented.
func WithPartition(p int) HostOption {
	return hostOption(func(c *hostConfig) { c.part = p; c.partSet = true })
}

// WithDriverConfig overrides the host's NPF driver configuration (default
// DefaultDriverConfig()).
func WithDriverConfig(cfg DriverConfig) HostOption {
	return hostOption(func(c *hostConfig) { c.driver = cfg })
}

// WithChannelName names the channel (default: the address space's name).
func WithChannelName(name string) ChannelOption {
	return channelOption(func(c *channelConfig) { c.name = name })
}

// WithRingSize sets the channel's RX descriptor ring size (default 256).
func WithRingSize(n int) ChannelOption {
	return channelOption(func(c *channelConfig) { c.ringSize = n })
}

// WithPolicy sets the channel's receive fault policy (default
// PolicyBackup). Non-pinned policies get on-demand paging through the
// host's driver; PolicyPinned leaves residence to the caller
// (StaticPinAll).
func WithPolicy(p FaultPolicy) ChannelOption {
	return channelOption(func(c *channelConfig) { c.policy = p })
}

// ChaosOption carries a fault-injection plan. It is accepted by both
// NewCluster (the plan is armed against the whole cluster as hosts and
// devices are added) and OpenChannel (the plan is armed against that
// channel's device, driver, and address space only).
type ChaosOption struct{ plan *ChaosPlan }

func (o ChaosOption) applyCluster(c *clusterConfig) { c.plan = o.plan }
func (o ChaosOption) applyChannel(c *channelConfig) { c.plan = o.plan }

// WithChaos injects the given fault plan; see the chaos re-exports
// (ChaosPlan, FirmwareStall, LossBurst, GilbertElliott, LinkFlap,
// MemoryPressure, InvalidationChaos, ResolverSlowdown) for the faults a
// plan can carry. Arming a plan implies tracing, so every injected fault
// leaves a span and runs stay digest-comparable.
func WithChaos(plan *ChaosPlan) ChaosOption { return ChaosOption{plan: plan} }

// compile-time interface checks
var (
	_ ClusterOption = ChaosOption{}
	_ ChannelOption = ChaosOption{}
)
