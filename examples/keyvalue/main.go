// Keyvalue: a small key-value server over a direct Ethernet channel,
// demonstrating the paper's §5 running example — the same cold-ring startup
// under the three receive fault policies: statically pinned, drop, and the
// backup ring.
//
// The server is written against the public API only: a TCP stack over an
// IOchannel, with the library's driver doing all NPF work invisibly.
//
// Run with: go run ./examples/keyvalue
package main

import (
	"fmt"

	"npf"
)

// request/reply are this example's tiny wire protocol.
type request struct {
	op    string // "get" | "set"
	key   string
	value string
}

type reply struct {
	value string
	ok    bool
}

// server is a toy KV store over npf TCP connections.
type server struct {
	data map[string]string
}

func (s *server) accept(c *npf.Conn) {
	c.OnMessage = func(payload any, n int) {
		req := payload.(*request)
		switch req.op {
		case "set":
			s.data[req.key] = req.value
			c.Send(32, &reply{ok: true})
		case "get":
			v, ok := s.data[req.key]
			c.Send(32+len(v), &reply{value: v, ok: ok})
		}
	}
}

// run builds a fresh two-host setup with the given server-ring policy and
// returns how long 500 request/response pairs took from a cold start.
func run(policy npf.FaultPolicy) (npf.Time, bool) {
	cluster := npf.NewCluster(npf.WithSeed(7), npf.WithFabric(npf.EthernetFabric()))
	serverHost := cluster.NewHost("server")
	clientHost := cluster.NewHost("client")

	// Server: one IOuser with a 64-entry receive ring under the policy.
	srvAS := serverHost.NewProcess("kv", nil)
	srvCh := serverHost.OpenChannel(srvAS, npf.WithRingSize(64), npf.WithPolicy(policy))
	srvStack := npf.NewStack(srvCh, npf.DefaultTCPConfig())
	if policy == npf.PolicyPinned {
		if _, err := npf.StaticPinAll(srvAS, srvCh.Domain); err != nil {
			panic(err)
		}
	}
	srv := &server{data: make(map[string]string)}
	srvStack.Listen(srv.accept)

	// Client: unmodified machine, statically pinned.
	cliAS := clientHost.NewProcess("cli", nil)
	cliCh := clientHost.OpenChannel(cliAS, npf.WithPolicy(npf.PolicyPinned))
	cliStack := npf.NewStack(cliCh, npf.DefaultTCPConfig())
	if _, err := npf.StaticPinAll(cliAS, cliCh.Domain); err != nil {
		panic(err)
	}

	const total = 500
	done := 0
	var doneAt npf.Time
	conn := cliStack.Dial(srvCh.Dev.Node, srvCh.Flow)
	issue := func() {
		if done%2 == 0 {
			conn.Send(96, &request{op: "set", key: fmt.Sprint("k", done), value: "v"})
		} else {
			conn.Send(64, &request{op: "get", key: fmt.Sprint("k", done-1)})
		}
	}
	conn.OnConnect = func() { issue() }
	failed := false
	conn.OnFail = func(error) { failed = true }
	conn.OnMessage = func(payload any, n int) {
		done++
		if done >= total {
			doneAt = cluster.Eng.Now()
			return
		}
		issue()
	}
	cluster.Eng.RunUntil(120 * npf.Second)
	if doneAt == 0 {
		return 120 * npf.Second, failed
	}
	return doneAt, failed
}

func main() {
	fmt.Println("cold-start time for 500 KV operations over a 64-entry ring:")
	for _, policy := range []npf.FaultPolicy{npf.PolicyPinned, npf.PolicyBackup, npf.PolicyDrop} {
		t, failed := run(policy)
		status := ""
		if failed {
			status = "  (connection aborted by TCP)"
		}
		fmt.Printf("  %-7v %12v%s\n", policy, t, status)
	}
	fmt.Println("\nbackup ring ≈ pinned; drop pays seconds of TCP backoff (Figure 4).")
}
