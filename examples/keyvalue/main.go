// Keyvalue: the distributed key-value service from internal/kv driven
// through the public API — a sharded, primary/backup-replicated store
// spread across simulated hosts, with a Zipf-skewed workload and a
// mid-run reclaim squeeze on the servers' memory cgroups.
//
// The run compares the paper's Table 3 registration spectrum at service
// scale: a fully pinned deployment shrugs off the squeeze but holds its
// memory forever; ODP and the pin-down cache give memory back and pay for
// it in the tail (network page faults, refaults) — exactly the
// elasticity-vs-tail-latency tradeoff the paper argues ODP makes viable.
//
// Run with: go run ./examples/keyvalue
package main

import (
	"fmt"

	"npf"
)

// run deploys the service under one registration policy, squeezes every
// shard's cgroup to 64 KB four times mid-run, and reports the workload's
// latency profile.
func run(reg npf.KVRegPolicy) {
	cluster := npf.NewCluster(npf.WithSeed(7), npf.WithKV(npf.KVConfig{
		ServerHosts: 3, ClientHosts: 1, Shards: 4, Replicas: 2,
		Reg: reg, ExpectedKeys: 1024,
	}))
	svc := cluster.KV

	// Reclaim waves: squeeze all shard groups to the floor, hold 5 ms,
	// release. Pinned arenas are immune; ODP arenas evict and refault.
	for wave := 0; wave < 4; wave++ {
		at := npf.Time(5+15*wave) * npf.Millisecond
		cluster.Eng.At(at, func() {
			for _, g := range svc.Groups() {
				g.SetLimit(64 << 10)
			}
		})
		cluster.Eng.At(at+5*npf.Millisecond, func() {
			for _, g := range svc.Groups() {
				g.SetLimit(0)
			}
		})
	}

	wl := svc.NewWorkload(npf.WorkloadConfig{
		TargetOps: 2000, Keys: 1024, ZipfS: 1.1, GetRatio: 0.9,
		Prepopulate: true, FrontCacheEntries: 32,
	})
	wl.OnDone = func() {
		svc.ClientEngine().After(300*npf.Millisecond, func() { svc.Stop() })
	}
	wl.Start()
	cluster.RunUntil(60 * npf.Second)

	if diverged := svc.CheckConsistency(); len(diverged) != 0 {
		panic(fmt.Sprint("replicas diverged: ", diverged))
	}
	fmt.Printf("  %-15v %5d ops   p50 %5.0f µs   p99 %6.0f µs   %5d NPFs   %5d evictions\n",
		reg, wl.Completed(), wl.Lat.Percentile(50), wl.Lat.Percentile(99),
		svc.NPFs(), svc.GroupEvictions())
}

func main() {
	fmt.Println("distributed KV (3 servers × 4 shards × 2 replicas, 2000 Zipf ops,")
	fmt.Println("4 reclaim waves squeezing every shard cgroup to 64 KB):")
	for _, reg := range []npf.KVRegPolicy{npf.KVRegPinned, npf.KVRegPinDown, npf.KVRegODP} {
		run(reg)
	}
	fmt.Println("\npinned ignores reclaim but can never give memory back; ODP absorbs")
	fmt.Println("the squeeze as tail latency and re-faults its way home (Table 3).")
}
