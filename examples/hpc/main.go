// HPC: a four-node ring exchange comparing the memory-registration
// strategies of §6.2 — a bounded pin-down cache (what MPI middlewares
// implement in thousands of lines) against on-demand paging (one call).
//
// Each node cycles through a working set of buffers larger than the
// pin-down cache, so the cache thrashes exactly as the paper's Table 3
// warns for coarse-grained pinning; ODP pays faults once and then runs at
// wire speed.
//
// Run with: go run ./examples/hpc
package main

import (
	"fmt"

	"npf"
)

const (
	nodes     = 4
	msgSize   = 256 << 10
	buffers   = 16 // per-node rotation (off-cache working set)
	iters     = 300
	cacheSize = 8 * msgSize // pin-down cache holds only half the rotation
)

type node struct {
	host *npf.Host
	as   *npf.AddressSpace
	next *npf.QP // to (i+1) % nodes
	prev *npf.QP // from (i-1+nodes) % nodes
	pdc  *npf.PinDownCache
	idx  int
}

func (n *node) buf() npf.VAddr {
	b := npf.VAddr(n.idx%buffers) * msgSize
	n.idx++
	return b
}

// register pays the pin-down cache cost for buf (if caching) and returns
// the time it took.
func (n *node) register(buf npf.VAddr, also *npf.QP) npf.Time {
	if n.pdc == nil {
		return 0
	}
	cost, err := n.pdc.Acquire(buf, msgSize)
	if err != nil {
		panic(err)
	}
	if also != nil {
		// Real verbs MRs span the protection domain; our two QPs were
		// created with separate domains, so mirror the registration.
		also.Domain.Map(buf.Page(), msgSize/npf.PageSize)
	}
	return cost
}

func run(usePinCache bool) (npf.Time, uint64) {
	cluster := npf.NewCluster(npf.WithSeed(3), npf.WithFabric(npf.InfiniBandFabric()))
	ring := make([]*node, nodes)
	hosts, err := cluster.TryNewHosts(npf.HostTemplate{
		NamePattern: "node%d",
		Options:     []npf.HostOption{npf.WithRAM(32 << 30)},
	}, nodes)
	if err != nil {
		panic(err)
	}
	for i, h := range hosts {
		as := h.NewProcess("rank", nil)
		as.MapBytes(buffers * msgSize)
		ring[i] = &node{host: h, as: as}
	}
	for i := range ring {
		j := (i + 1) % nodes
		a, b := ring[i], ring[j]
		qpA, qpB := a.host.OpenQP(a.as), b.host.OpenQP(b.as)
		npf.ConnectQPs(qpA, qpB)
		a.next, b.prev = qpA, qpB
	}
	if usePinCache {
		for _, n := range ring {
			n.pdc = npf.NewPinDownCache(n.as, n.next.Domain, cacheSize)
		}
	}

	var end npf.Time
	iter := 0
	received := 0
	var round func()
	round = func() {
		if iter >= iters {
			end = cluster.Eng.Now()
			return
		}
		iter++
		received = 0
		for _, n := range ring {
			n := n
			rbuf := n.buf()
			cost := n.register(rbuf, n.prev)
			n.prev.OnRecv = func(npf.RecvCompletion) {
				received++
				if received == nodes {
					round()
				}
			}
			cluster.Eng.After(cost, func() {
				n.prev.PostRecv(npf.RecvWQE{ID: int64(iter), Addr: rbuf, Len: msgSize})
			})
		}
		for _, n := range ring {
			n := n
			sbuf := n.buf()
			touch, err := n.as.Touch(sbuf, msgSize, true) // produce the data
			if err != nil {
				panic(err)
			}
			cost := touch.Cost + n.register(sbuf, nil)
			cluster.Eng.After(cost, func() {
				n.next.PostSend(npf.SendWQE{ID: int64(iter), Laddr: sbuf, Len: msgSize})
			})
		}
	}
	round()
	cluster.Eng.Run()
	var evictions uint64
	if ring[0].pdc != nil {
		evictions = ring[0].pdc.Evictions.N
	}
	return end, evictions
}

func main() {
	fmt.Printf("ring exchange: %d nodes, %d KiB messages, %d-buffer rotation, %d iterations\n\n",
		nodes, msgSize>>10, buffers, iters)
	pin, evictions := run(true)
	odp, _ := run(false)
	fmt.Printf("pin-down cache (%d KiB bound): %10v  (%d page evictions per node)\n",
		cacheSize>>10, pin, evictions)
	fmt.Printf("on-demand paging:              %10v\n", odp)
	fmt.Printf("\nthe cache holds half the working set, so every buffer reuse re-pins\n")
	fmt.Printf("and re-registers (map/unmap churn); ODP faults each buffer once and\n")
	fmt.Printf("stays warm. with a big-enough cache the two tie — at the price of\n")
	fmt.Printf("permanently locked memory (Table 3's coarse-grained pinning tradeoff).\n")
}
