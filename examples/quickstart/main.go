// Quickstart: send an RDMA message into completely cold (never touched,
// never pinned) memory and watch the NIC take network page faults instead
// of requiring pinning.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"npf"
)

func main() {
	// A two-node InfiniBand cluster, like the paper's Connect-IB testbed.
	cluster := npf.NewCluster(npf.WithSeed(42), npf.WithFabric(npf.InfiniBandFabric()))
	alice := cluster.NewHost("alice")
	bob := cluster.NewHost("bob")

	// Each host runs one IOuser process. Nothing is pinned, ever: the
	// address spaces are plain demand-paged virtual memory.
	src := alice.NewProcess("sender", nil)
	src.MapBytes(1 << 20)
	dst := bob.NewProcess("receiver", nil)
	dst.MapBytes(1 << 20)

	// ODP queue pairs: registration is a single call; presence is the
	// driver's problem from here on.
	qpA := alice.OpenQP(src)
	qpB := bob.OpenQP(dst)
	npf.ConnectQPs(qpA, qpB)

	var deliveredAt npf.Time
	qpB.OnRecv = func(c npf.RecvCompletion) {
		deliveredAt = cluster.Eng.Now()
		fmt.Printf("received %q (%d bytes) at t=%v\n", c.Payload, c.Len, deliveredAt)
	}

	// Post a receive into cold memory and send from cold memory: the send
	// side faults locally (the QP suspends until the driver resolves it),
	// and the receive side faults remotely (the firmware RNR-NACKs the
	// sender and RC retransmission recovers the data).
	qpB.PostRecv(npf.RecvWQE{ID: 1, Addr: 0, Len: 64 << 10})
	qpA.PostSend(npf.SendWQE{ID: 1, Laddr: 0, Len: 64 << 10, Payload: "hello, ODP"})

	cluster.Eng.Run()

	fmt.Printf("\nsender-side NPFs resolved:   %d\n", alice.Driver.NPFs.N)
	fmt.Printf("receiver-side NPFs resolved: %d\n", bob.Driver.NPFs.N)
	fmt.Printf("RNR NACKs sent by receiver:  %d\n", qpB.HCA().RNRNacks.N)
	fmt.Printf("mean NPF service time:       %.0f µs (paper: ≈220 µs for 4 KB)\n",
		bob.Driver.Hist.Total.Mean())
	fmt.Printf("cold 64 KB message latency:  %v\n", deliveredAt)
	fmt.Println("\nno byte of memory was ever pinned.")
}
