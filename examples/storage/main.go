// Storage: a remote-memory dataset served over RDMA reads, showing the two
// §6.1 storage benefits of NPFs: only the touched part of a huge sparse
// region ever consumes physical memory, and an RDMA-read initiator that
// faults mid-stream recovers by rewinding (the paper's §4 read-rewind
// flow), with zero pinning on either side.
//
// Run with: go run ./examples/storage
package main

import (
	"fmt"

	"npf"
)

func main() {
	cluster := npf.NewCluster(npf.WithSeed(11), npf.WithFabric(npf.InfiniBandFabric()))
	serverHost := cluster.NewHost("dataserver", npf.WithRAM(16<<30))
	clientHost := cluster.NewHost("analytics", npf.WithRAM(4<<30))

	// The data server exposes a 4 GiB dataset region. With ODP it can be
	// registered wholesale — no pinning, no memory consumed up front.
	srv := serverHost.NewProcess("dataset", nil)
	const datasetBytes = 4 << 30
	srv.MapBytes(datasetBytes)

	cli := clientHost.NewProcess("reader", nil)
	cli.MapBytes(256 << 20)

	qpS := serverHost.OpenQP(srv)
	qpC := clientHost.OpenQP(cli)
	npf.ConnectQPs(qpS, qpC)

	fmt.Printf("dataset registered: %d GiB virtual, %d bytes resident\n",
		datasetBytes>>30, srv.ResidentBytes())

	// The analytics client RDMA-reads 32 scattered 1 MiB chunks. Both the
	// remote source pages (server side) and the local destination pages
	// (client side) start cold.
	const chunk = 1 << 20
	const chunks = 32
	completed := 0
	qpC.OnReadComplete = func(id int64) {
		completed++
		if completed < chunks {
			issueRead(qpC, completed)
		}
	}
	issueRead(qpC, 0)
	cluster.Eng.Run()

	fmt.Printf("\nreads completed:            %d × %d KiB\n", completed, chunk>>10)
	fmt.Printf("server resident afterwards: %d MiB of %d GiB (%.2f%%)\n",
		srv.ResidentBytes()>>20, datasetBytes>>30,
		100*float64(srv.ResidentBytes())/float64(datasetBytes))
	fmt.Printf("server-side NPFs:           %d (read-responder faults)\n", serverHost.Driver.NPFs.N)
	fmt.Printf("client-side NPFs:           %d\n", clientHost.Driver.NPFs.N)
	fmt.Printf("read rewinds (initiator faulted mid-stream): %d\n", qpC.HCA().ReadRewinds.N)
	fmt.Println("\nwith pinning, serving this dataset would have locked 4 GiB up front.")
}

// issueRead fetches chunk i of the remote dataset into a rotating local
// window. Chunks are scattered across the dataset (stride 113 MiB) so each
// touches fresh remote pages.
func issueRead(qp *npf.QP, i int) {
	const chunk = 1 << 20
	remote := npf.VAddr(i) * 113 << 20
	local := npf.VAddr(i%16) * chunk
	qp.PostRead(npf.ReadWQE{ID: int64(i), Laddr: local, Raddr: remote, Len: chunk})
}
