package npf

import "testing"

// Facade-level tests: the public API alone must be enough to build working
// setups (this is what the examples rely on).

func TestClusterQuickstartFlow(t *testing.T) {
	cluster := NewCluster(1, InfiniBandFabric())
	a := cluster.NewHost("a", 8<<30)
	b := cluster.NewHost("b", 8<<30)
	src := a.NewProcess("src", nil)
	src.MapBytes(1 << 20)
	dst := b.NewProcess("dst", nil)
	dst.MapBytes(1 << 20)
	qpA, qpB := a.OpenQP(src), b.OpenQP(dst)
	ConnectQPs(qpA, qpB)

	var got any
	qpB.OnRecv = func(c RecvCompletion) { got = c.Payload }
	qpB.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: 64 << 10})
	qpA.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 64 << 10, Payload: "hi"})
	cluster.Eng.Run()

	if got != "hi" {
		t.Fatalf("payload = %v", got)
	}
	if a.Driver.NPFs.N == 0 || b.Driver.NPFs.N == 0 {
		t.Fatal("cold transfer should have faulted on both sides")
	}
	if src.PinnedBytes() != 0 || dst.PinnedBytes() != 0 {
		t.Fatal("ODP must not pin")
	}
}

func TestClusterEthernetChannelODP(t *testing.T) {
	cluster := NewCluster(2, EthernetFabric())
	server := cluster.NewHost("server", 8<<30)
	client := cluster.NewHost("client", 8<<30)

	sAS := server.NewProcess("srv", nil)
	sCh := server.OpenChannel("srv", sAS, 64, PolicyBackup)
	sStack := NewStack(sCh, DefaultTCPConfig())

	cAS := client.NewProcess("cli", nil)
	cCh := client.OpenChannel("cli", cAS, 64, PolicyPinned)
	cStack := NewStack(cCh, DefaultTCPConfig())
	if _, err := StaticPinAll(cAS, cCh.Domain); err != nil {
		t.Fatal(err)
	}

	received := 0
	sStack.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	conn := cStack.Dial(sCh.Dev.Node, sCh.Flow)
	for i := 0; i < 10; i++ {
		conn.Send(4000, i)
	}
	cluster.Eng.RunUntil(10 * Second)
	if received != 10 {
		t.Fatalf("received %d/10 over a cold backup ring", received)
	}
}

func TestClusterMemoryGroup(t *testing.T) {
	cluster := NewCluster(3, EthernetFabric())
	h := cluster.NewHost("h", 1<<30)
	cg := NewMemGroup("container", 16*PageSize)
	p := h.NewProcess("p", cg)
	p.MapBytes(1 << 20)
	if _, err := p.TouchPages(0, 64, true); err != nil {
		t.Fatal(err)
	}
	if p.ResidentBytes() != 16*PageSize {
		t.Fatalf("resident = %d, want cgroup limit", p.ResidentBytes())
	}
}

func TestPinDownCacheFacade(t *testing.T) {
	cluster := NewCluster(4, InfiniBandFabric())
	h := cluster.NewHost("h", 1<<30)
	as := h.NewProcess("p", nil)
	as.MapBytes(16 << 20)
	qp := h.OpenPinnedQP(as)
	pdc := NewPinDownCache(as, qp.Domain, 1<<20)
	if _, err := pdc.Acquire(0, 64<<10); err != nil {
		t.Fatal(err)
	}
	if pdc.PinnedBytes() != 64<<10 {
		t.Fatalf("pinned = %d", pdc.PinnedBytes())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, Time) {
		cluster := NewCluster(99, InfiniBandFabric())
		a := cluster.NewHost("a", 8<<30)
		b := cluster.NewHost("b", 8<<30)
		src := a.NewProcess("src", nil)
		src.MapBytes(8 << 20)
		dst := b.NewProcess("dst", nil)
		dst.MapBytes(8 << 20)
		qpA, qpB := a.OpenQP(src), b.OpenQP(dst)
		ConnectQPs(qpA, qpB)
		var last Time
		qpB.OnRecv = func(RecvCompletion) { last = cluster.Eng.Now() }
		for i := 0; i < 20; i++ {
			qpB.PostRecv(RecvWQE{ID: int64(i), Addr: VAddr(i%4) * 65536, Len: 64 << 10})
			qpA.PostSend(SendWQE{ID: int64(i), Laddr: VAddr(i%4) * 65536, Len: 64 << 10})
		}
		cluster.Eng.Run()
		return cluster.Eng.Executed(), last
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
