package npf

import "testing"

// Facade-level tests: the public API alone must be enough to build working
// setups (this is what the examples rely on).

func TestClusterQuickstartFlow(t *testing.T) {
	cluster := NewCluster(WithSeed(1), WithFabric(InfiniBandFabric()))
	a := cluster.NewHost("a")
	b := cluster.NewHost("b")
	src := a.NewProcess("src", nil)
	src.MapBytes(1 << 20)
	dst := b.NewProcess("dst", nil)
	dst.MapBytes(1 << 20)
	qpA, qpB := a.OpenQP(src), b.OpenQP(dst)
	ConnectQPs(qpA, qpB)

	var got any
	qpB.OnRecv = func(c RecvCompletion) { got = c.Payload }
	qpB.PostRecv(RecvWQE{ID: 1, Addr: 0, Len: 64 << 10})
	qpA.PostSend(SendWQE{ID: 1, Laddr: 0, Len: 64 << 10, Payload: "hi"})
	cluster.Eng.Run()

	if got != "hi" {
		t.Fatalf("payload = %v", got)
	}
	if a.Driver.NPFs.N == 0 || b.Driver.NPFs.N == 0 {
		t.Fatal("cold transfer should have faulted on both sides")
	}
	if src.PinnedBytes() != 0 || dst.PinnedBytes() != 0 {
		t.Fatal("ODP must not pin")
	}
}

func TestClusterEthernetChannelODP(t *testing.T) {
	cluster := NewCluster(WithSeed(2)) // Ethernet is the default fabric
	server := cluster.NewHost("server")
	client := cluster.NewHost("client")

	sAS := server.NewProcess("srv", nil)
	sCh := server.OpenChannel(sAS, WithRingSize(64), WithPolicy(PolicyBackup))
	sStack := NewStack(sCh, DefaultTCPConfig())

	cAS := client.NewProcess("cli", nil)
	cCh := client.OpenChannel(cAS, WithRingSize(64), WithPolicy(PolicyPinned))
	cStack := NewStack(cCh, DefaultTCPConfig())
	if _, err := StaticPinAll(cAS, cCh.Domain); err != nil {
		t.Fatal(err)
	}

	received := 0
	sStack.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	conn := cStack.Dial(sCh.Dev.Node, sCh.Flow)
	for i := 0; i < 10; i++ {
		conn.Send(4000, i)
	}
	cluster.Eng.RunUntil(10 * Second)
	if received != 10 {
		t.Fatalf("received %d/10 over a cold backup ring", received)
	}
}

func TestClusterMemoryGroup(t *testing.T) {
	cluster := NewCluster(WithSeed(3), WithFabric(EthernetFabric()))
	h := cluster.NewHost("h", WithRAM(1<<30))
	cg := NewMemGroup("container", 16*PageSize)
	p := h.NewProcess("p", cg)
	p.MapBytes(1 << 20)
	if _, err := p.TouchPages(0, 64, true); err != nil {
		t.Fatal(err)
	}
	if p.ResidentBytes() != 16*PageSize {
		t.Fatalf("resident = %d, want cgroup limit", p.ResidentBytes())
	}
}

func TestPinDownCacheFacade(t *testing.T) {
	cluster := NewCluster(WithSeed(4), WithFabric(InfiniBandFabric()))
	h := cluster.NewHost("h", WithRAM(1<<30))
	as := h.NewProcess("p", nil)
	as.MapBytes(16 << 20)
	qp := h.OpenPinnedQP(as)
	pdc := NewPinDownCache(as, qp.Domain, 1<<20)
	if _, err := pdc.Acquire(0, 64<<10); err != nil {
		t.Fatal(err)
	}
	if pdc.PinnedBytes() != 64<<10 {
		t.Fatalf("pinned = %d", pdc.PinnedBytes())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, Time) {
		cluster := NewCluster(WithSeed(99), WithFabric(InfiniBandFabric()))
		a := cluster.NewHost("a")
		b := cluster.NewHost("b")
		src := a.NewProcess("src", nil)
		src.MapBytes(8 << 20)
		dst := b.NewProcess("dst", nil)
		dst.MapBytes(8 << 20)
		qpA, qpB := a.OpenQP(src), b.OpenQP(dst)
		ConnectQPs(qpA, qpB)
		var last Time
		qpB.OnRecv = func(RecvCompletion) { last = cluster.Eng.Now() }
		for i := 0; i < 20; i++ {
			qpB.PostRecv(RecvWQE{ID: int64(i), Addr: VAddr(i%4) * 65536, Len: 64 << 10})
			qpA.PostSend(SendWQE{ID: int64(i), Laddr: VAddr(i%4) * 65536, Len: 64 << 10})
		}
		cluster.Eng.Run()
		return cluster.Eng.Executed(), last
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}

// The deprecated positional shims must keep building the same setups as the
// options they forward to.
func TestDeprecatedShimsStillWork(t *testing.T) {
	cluster := NewClusterSeed(5, EthernetFabric())
	h := cluster.NewHostRAM("h", 1<<30)
	as := h.NewProcess("p", nil)
	as.MapBytes(1 << 20)
	ch := h.OpenChannelRing("p", as, 64, PolicyBackup)
	if ch == nil || ch.Dev != h.NIC {
		t.Fatal("shim-built channel not wired to the host NIC")
	}
	if got := int64(1 << 30); h.Machine.RAM.Limit != got {
		t.Fatalf("RAM = %d, want %d", h.Machine.RAM.Limit, got)
	}
}

// A cluster-level chaos plan arms before any host exists; faults must still
// land on devices and drivers added afterwards (late-bound targets).
func TestClusterChaosLateBinding(t *testing.T) {
	run := func() (uint64, uint64) {
		plan := NewChaosPlan(
			LossBurst{At: 500 * Microsecond, Duration: 4 * Millisecond, Prob: 0.25},
		)
		cluster := NewCluster(WithSeed(6), WithChaos(plan))
		if cluster.Tracer == nil {
			t.Fatal("WithChaos must imply tracing")
		}
		server := cluster.NewHost("server")
		client := cluster.NewHost("client")

		sAS := server.NewProcess("srv", nil)
		sCh := server.OpenChannel(sAS, WithRingSize(64))
		sStack := NewStack(sCh, DefaultTCPConfig())

		cAS := client.NewProcess("cli", nil)
		cCh := client.OpenChannel(cAS, WithPolicy(PolicyPinned))
		cStack := NewStack(cCh, DefaultTCPConfig())
		if _, err := StaticPinAll(cAS, cCh.Domain); err != nil {
			t.Fatal(err)
		}

		received := 0
		sStack.Listen(func(c *Conn) {
			c.OnMessage = func(payload any, n int) { received++ }
		})
		conn := cStack.Dial(sCh.Dev.Node, sCh.Flow)
		const total = 50
		for i := 0; i < total; i++ {
			i := i
			cluster.Eng.At(Time(1+i)*100*Microsecond, func() { conn.Send(2000, i) })
		}
		cluster.Eng.RunUntil(30 * Second)
		if received != total {
			t.Fatalf("received %d/%d under injected loss", received, total)
		}
		drops := cluster.Net.InjectedDrops()
		if drops == 0 {
			t.Fatal("cluster-level plan injected no drops on late-added hosts")
		}
		return drops, cluster.Tracer.Digest()
	}
	d1, g1 := run()
	d2, g2 := run()
	if d1 != d2 || g1 != g2 {
		t.Fatalf("chaos run not deterministic: (%d,%#x) vs (%d,%#x)", d1, g1, d2, g2)
	}
}

// A channel-level chaos plan scopes to that channel's driver only.
func TestChannelScopedChaos(t *testing.T) {
	plan := NewChaosPlan(
		ResolverSlowdown{At: 0, Duration: 10 * Second, Extra: 50 * Microsecond},
	)
	cluster := NewCluster(WithSeed(8))
	server := cluster.NewHost("server")
	client := cluster.NewHost("client")

	sAS := server.NewProcess("srv", nil)
	sCh := server.OpenChannel(sAS, WithRingSize(64), WithChaos(plan))
	sStack := NewStack(sCh, DefaultTCPConfig())

	cAS := client.NewProcess("cli", nil)
	cCh := client.OpenChannel(cAS, WithPolicy(PolicyPinned))
	cStack := NewStack(cCh, DefaultTCPConfig())
	if _, err := StaticPinAll(cAS, cCh.Domain); err != nil {
		t.Fatal(err)
	}

	received := 0
	sStack.Listen(func(c *Conn) {
		c.OnMessage = func(payload any, n int) { received++ }
	})
	conn := cStack.Dial(sCh.Dev.Node, sCh.Flow)
	for i := 0; i < 10; i++ {
		conn.Send(4000, i)
	}
	cluster.Eng.RunUntil(10 * Second)
	if received != 10 {
		t.Fatalf("received %d/10 with a slowed resolver", received)
	}
	if server.Driver.NPFs.N == 0 {
		t.Fatal("cold backup ring should have faulted")
	}
	if cluster.Tracer == nil {
		t.Fatal("channel-level WithChaos must create a tracer")
	}
}

// TestClusterWithKV deploys the distributed KV service through the facade,
// drives a workload to completion, and checks the chaos plan's target set
// picked up the service's layers.
func TestClusterWithKV(t *testing.T) {
	plan := NewChaosPlan(MemoryPressure{
		At: 5 * Millisecond, Period: 10 * Millisecond, Waves: 3,
		LowBytes: 64 << 10, HighBytes: 0,
	})
	cluster := NewCluster(WithSeed(7),
		WithKV(KVConfig{ServerHosts: 3, ClientHosts: 1, Shards: 4}),
		WithChaos(plan))
	if cluster.KV == nil {
		t.Fatal("WithKV left Cluster.KV nil")
	}
	ij := cluster.Injector()
	if len(ij.T.Groups) == 0 || len(ij.T.Drivers) == 0 || len(ij.T.Devs) == 0 {
		t.Fatal("KV layers did not join the chaos target set")
	}
	wl := cluster.KV.NewWorkload(KVWorkloadConfig{
		TargetOps: 600, Keys: 256, Prepopulate: true,
	})
	wl.OnDone = func() {
		cluster.KV.ClientEngine().After(300*Millisecond, func() { cluster.KV.Stop() })
	}
	wl.Start()
	cluster.RunUntil(60 * Second)
	if wl.Completed() != 600 {
		t.Fatalf("completed %d of 600 ops", wl.Completed())
	}
	if got := cluster.KV.CheckConsistency(); len(got) != 0 {
		t.Fatalf("replicas diverged: %v", got)
	}
	if cluster.KV.GroupEvictions() == 0 {
		t.Fatal("memory-pressure waves never squeezed the shard groups")
	}
}

// TestClusterWithKVOverRC checks the facade pairing of KVTransportRC with an
// InfiniBand fabric.
func TestClusterWithKVOverRC(t *testing.T) {
	cluster := NewCluster(WithSeed(8), WithFabric(InfiniBandFabric()),
		WithKV(KVConfig{ServerHosts: 3, ClientHosts: 1, Shards: 4,
			Transport: KVTransportRC, Reg: KVRegPinned}))
	wl := cluster.KV.NewWorkload(KVWorkloadConfig{TargetOps: 400, Keys: 256, Prepopulate: true})
	wl.OnDone = func() {
		cluster.KV.ClientEngine().After(300*Millisecond, func() { cluster.KV.Stop() })
	}
	wl.Start()
	cluster.RunUntil(60 * Second)
	if wl.Completed() != 400 {
		t.Fatalf("completed %d of 400 ops", wl.Completed())
	}
}

// TestClusterWithEnginesDeterminism shards a two-host RC cluster across two
// partition engines and checks the run replays byte-identically for any
// worker-thread count.
func TestClusterWithEnginesDeterminism(t *testing.T) {
	run := func(threads int) (uint64, uint64, Time) {
		cluster := NewCluster(WithSeed(99), WithFabric(InfiniBandFabric()),
			WithEngines(2), WithTracing())
		cluster.Group.SetThreads(threads)
		a := cluster.NewHost("a") // partition 0
		b := cluster.NewHost("b") // partition 1
		if a.Part != 0 || b.Part != 1 {
			t.Fatalf("round-robin placement broke: a=%d b=%d", a.Part, b.Part)
		}
		src := a.NewProcess("src", nil)
		src.MapBytes(8 << 20)
		dst := b.NewProcess("dst", nil)
		dst.MapBytes(8 << 20)
		qpA, qpB := a.OpenQP(src), b.OpenQP(dst)
		ConnectQPs(qpA, qpB)
		recvd := 0
		qpB.OnRecv = func(RecvCompletion) { recvd++ }
		for i := 0; i < 20; i++ {
			qpB.PostRecv(RecvWQE{ID: int64(i), Addr: VAddr(i%4) * 65536, Len: 64 << 10})
			qpA.PostSend(SendWQE{ID: int64(i), Laddr: VAddr(i%4) * 65536, Len: 64 << 10})
		}
		end := cluster.Run()
		if recvd != 20 {
			t.Fatalf("threads=%d: received %d of 20", threads, recvd)
		}
		if b.Driver.NPFs.N == 0 {
			t.Fatal("cold receive should have faulted")
		}
		return cluster.Group.Executed(), cluster.Digest(), end
	}
	e1, d1, t1 := run(1)
	e2, d2, t2 := run(2)
	if e1 != e2 || d1 != d2 || t1 != t2 {
		t.Fatalf("thread counts diverged: (%d,%016x,%v) vs (%d,%016x,%v)",
			e1, d1, t1, e2, d2, t2)
	}
}

// TestClusterWithEnginesKV deploys the KV service split server-tier /
// client-tier across two partition engines, with a memory-pressure chaos
// plan armed against the server partition, and checks byte-identical
// replay across thread counts.
func TestClusterWithEnginesKV(t *testing.T) {
	run := func(threads int) (uint64, uint64, int) {
		plan := NewChaosPlan(MemoryPressure{
			At: 5 * Millisecond, Period: 10 * Millisecond, Waves: 3,
			LowBytes: 64 << 10, HighBytes: 0,
		})
		cluster := NewCluster(WithSeed(7), WithEngines(2),
			WithKV(KVConfig{ServerHosts: 3, ClientHosts: 1, Shards: 4}),
			WithChaos(plan))
		cluster.Group.SetThreads(threads)
		if cluster.KV.ClientEngine() != cluster.EngineFor(1) {
			t.Fatal("client tier did not land on partition 1")
		}
		ij := cluster.Injector()
		if len(ij.T.Drivers) != 3 {
			t.Fatalf("chaos targets hold %d drivers, want the 3 servers", len(ij.T.Drivers))
		}
		wl := cluster.KV.NewWorkload(KVWorkloadConfig{
			TargetOps: 600, Keys: 256, Prepopulate: true,
		})
		wl.OnDone = func() {
			cluster.KV.ClientEngine().After(300*Millisecond, func() { cluster.KV.Stop() })
		}
		wl.Start()
		cluster.RunUntil(60 * Second)
		if wl.Completed() != 600 {
			t.Fatalf("threads=%d: completed %d of 600 ops", threads, wl.Completed())
		}
		if got := cluster.KV.CheckConsistency(); len(got) != 0 {
			t.Fatalf("replicas diverged: %v", got)
		}
		if cluster.KV.GroupEvictions() == 0 {
			t.Fatal("memory-pressure waves never squeezed the shard groups")
		}
		return cluster.Group.Executed(), cluster.Digest(), wl.Completed()
	}
	e1, d1, c1 := run(1)
	e2, d2, c2 := run(2)
	if e1 != e2 || d1 != d2 || c1 != c2 {
		t.Fatalf("thread counts diverged: (%d,%016x,%d) vs (%d,%016x,%d)",
			e1, d1, c1, e2, d2, c2)
	}
}
