package npf

import (
	"strings"
	"testing"
)

// Batch host construction and partition-pin validation.

func TestNewHostsBatch(t *testing.T) {
	cluster := NewCluster(WithSeed(5), WithEngines(4))
	hosts := cluster.NewHosts(10, WithRAM(1<<30))
	if len(hosts) != 10 {
		t.Fatalf("built %d hosts, want 10", len(hosts))
	}
	if hosts[0].Name != "host-000" || hosts[9].Name != "host-009" {
		t.Fatalf("default names: %q .. %q", hosts[0].Name, hosts[9].Name)
	}
	// Placement must match ten NewHost calls in a loop: round-robin.
	for i, h := range hosts {
		if h.Part != i%4 {
			t.Fatalf("host %d on partition %d, want %d", i, h.Part, i%4)
		}
		if h.Eng != cluster.EngineFor(h.Part) {
			t.Fatalf("host %d engine/partition mismatch", i)
		}
	}
}

func TestHostTemplateNaming(t *testing.T) {
	cluster := NewCluster(WithSeed(5))
	tmpl := HostTemplate{
		NamePattern: "srv-%02d",
		Options:     []HostOption{WithRAM(2 << 30)},
	}
	hosts, err := cluster.TryNewHosts(tmpl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hosts[2].Name != "srv-02" {
		t.Fatalf("name = %q", hosts[2].Name)
	}
	// Templates are reusable: a second batch continues independently.
	more, err := cluster.TryNewHosts(tmpl, 2)
	if err != nil || len(more) != 2 {
		t.Fatalf("second batch: %v, %d hosts", err, len(more))
	}
}

func TestWithPartitionValidation(t *testing.T) {
	cluster := NewCluster(WithSeed(1), WithEngines(2))
	if _, err := cluster.TryNewHost("bad", WithPartition(2)); err == nil {
		t.Fatal("WithPartition(2) on a 2-engine cluster must be rejected")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error = %v", err)
	}
	if _, err := cluster.TryNewHost("bad", WithPartition(-1)); err == nil {
		t.Fatal("negative WithPartition must be rejected")
	}
	if h, err := cluster.TryNewHost("ok", WithPartition(1)); err != nil || h.Part != 1 {
		t.Fatalf("in-range pin: %v, part %d", err, h.Part)
	}
	// NewHost panics with the same configuration error.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("NewHost must panic on an out-of-range partition")
		}
	}()
	cluster.NewHost("bad", WithPartition(7))
}

func TestWithPartitionSingleEngineIgnored(t *testing.T) {
	cluster := NewCluster(WithSeed(1))
	// Documented behaviour: a non-negative pin is ignored without a group.
	h, err := cluster.TryNewHost("h", WithPartition(3))
	if err != nil || h.Part != 0 {
		t.Fatalf("single-engine pin: %v, part %d", err, h.Part)
	}
	if _, err := cluster.TryNewHost("h", WithPartition(-2)); err == nil {
		t.Fatal("negative pin must be rejected even single-engine")
	}
}

// WithSwarm deploys a scale-out sweep through the facade and the shared
// WorkloadConfig shapes its tenants.
func TestWithSwarmFacade(t *testing.T) {
	cfg := SweepConfig{
		Servers:    2,
		SwarmHosts: 6,
		Transport:  SweepTransportEth,
		RingSize:   64,
		Tenants: []SweepTenant{
			{Workload: WorkloadConfig{Tenant: "t0", Clients: 12, TargetOps: 240, Keys: 256, Prepopulate: true}, Reg: SweepRegODP},
			{Workload: WorkloadConfig{Tenant: "t1", Clients: 12, TargetOps: 240, Keys: 256, Prepopulate: true}, Reg: SweepRegPinned},
		},
	}
	cluster := NewCluster(WithSeed(9), WithEngines(2), WithSwarm(cfg))
	if cluster.Swarm == nil {
		t.Fatal("Swarm not deployed")
	}
	cluster.Run()
	r := cluster.Swarm.Result()
	if r.Ops != 480 || r.Clients != 24 {
		t.Fatalf("ops %d clients %d, want 480/24", r.Ops, r.Clients)
	}
	if r.Hosts != 8 || r.BytesPerHost <= 0 {
		t.Fatalf("fleet shape: %+v", r)
	}
}

func TestWithSwarmInvalidPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("invalid WithSwarm config must panic at NewCluster")
		}
	}()
	NewCluster(WithSwarm(SweepConfig{Servers: 1, SwarmHosts: 1, ValueBytes: 1 << 20}))
}

// The deprecated alias stays source-compatible with the shared type.
func TestKVWorkloadConfigAlias(t *testing.T) {
	var c KVWorkloadConfig = WorkloadConfig{Tenant: "x", Clients: 3}
	if c.Tenant != "x" || c.Clients != 3 {
		t.Fatalf("alias mismatch: %+v", c)
	}
}
